//! Couvreur–Francez–Gouda-style self-stabilizing unison: local,
//! uncoordinated resets (the baseline/ablation of E5 and E10).

use ssr_graph::{Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, RuleId, RuleMask, StateView};
use ssr_unison::Unison;

/// Increment rule: same guard as Algorithm U.
pub const RULE_CFG_INC: RuleId = RuleId(0);
/// Local reset rule: `c_u := 0` when some neighbor is more than one
/// increment away.
pub const RULE_CFG_RESET: RuleId = RuleId(1);

/// Self-stabilizing unison by *uncoordinated local resets* (Couvreur et
/// al. \[20\], in Boulinier's parametric formulation with `K > n²`).
///
/// Rules:
///
/// * `inc`:  `P_ICorrect(u) ∧ P_Up(u) → c_u := (c_u + 1) % K`
/// * `reset`: `¬P_ICorrect(u) → c_u := 0`
///
/// where `P_ICorrect`/`P_Up` are Algorithm U's predicates. Nothing
/// prevents a process from being dragged into several successive reset
/// cascades — which is exactly the move-complexity weakness (measured
/// in experiments E5/E10) that SDR's cooperative reset removes.
#[derive(Clone, Debug)]
pub struct CfgUnison {
    unison: Unison,
}

impl CfgUnison {
    /// CFG unison with explicit period `K` (the analysis wants `K > n²`).
    pub fn new(k: u64) -> Self {
        CfgUnison {
            unison: Unison::new(k),
        }
    }

    /// CFG unison with the smallest analyzed period: `K = n² + 1`.
    pub fn for_graph(graph: &Graph) -> Self {
        let n = graph.node_count() as u64;
        CfgUnison::new(n * n + 1)
    }

    /// The period `K`.
    pub fn period(&self) -> u64 {
        self.unison.period()
    }

    /// An arbitrary (adversarial) clock configuration.
    pub fn arbitrary_config(&self, graph: &Graph, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        graph.nodes().map(|_| rng.below(self.period())).collect()
    }

    /// The designated initial configuration (all clocks zero).
    pub fn initial_config(&self, graph: &Graph) -> Vec<u64> {
        vec![0; graph.node_count()]
    }

    fn p_icorrect<V: StateView<u64>>(&self, u: NodeId, view: &V) -> bool {
        let cu = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| self.unison.p_ok(cu, *view.state(v)))
    }
}

impl Algorithm for CfgUnison {
    type State = u64;

    fn rule_count(&self) -> usize {
        2
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        match rule {
            RULE_CFG_INC => "rule_inc",
            _ => "rule_reset",
        }
    }

    fn enabled_mask<V: StateView<u64>>(&self, u: NodeId, view: &V) -> RuleMask {
        let correct = self.p_icorrect(u, view);
        RuleMask::NONE
            .with_if(RULE_CFG_INC, correct && self.unison.p_up(u, view))
            .with_if(RULE_CFG_RESET, !correct && *view.state(u) != 0)
    }

    fn apply<V: StateView<u64>>(&self, u: NodeId, view: &V, rule: RuleId) -> u64 {
        match rule {
            RULE_CFG_INC => self.unison.succ(*view.state(u)),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_runtime::{ConfigView, Daemon, Simulator, StepOutcome};
    use ssr_unison::spec;

    #[test]
    fn period_is_quadratic() {
        let g = generators::ring(7);
        assert_eq!(CfgUnison::for_graph(&g).period(), 50);
    }

    #[test]
    fn reset_rule_fires_on_incoherence() {
        let g = generators::path(2);
        let algo = CfgUnison::new(50);
        let clocks = vec![0u64, 5];
        let v = ConfigView::new(&g, &clocks);
        // Both processes see the tear; both reset (node 0 is already 0,
        // so only node 1 has the reset rule enabled).
        assert!(algo.enabled_mask(NodeId(0), &v).is_empty());
        let m1 = algo.enabled_mask(NodeId(1), &v);
        assert!(m1.contains(RULE_CFG_RESET));
        assert_eq!(algo.apply(NodeId(1), &v, RULE_CFG_RESET), 0);
    }

    #[test]
    fn increment_rule_matches_unison() {
        let g = generators::path(2);
        let algo = CfgUnison::new(50);
        let clocks = vec![3u64, 3];
        let v = ConfigView::new(&g, &clocks);
        assert!(algo.enabled_mask(NodeId(0), &v).contains(RULE_CFG_INC));
        assert_eq!(algo.apply(NodeId(0), &v, RULE_CFG_INC), 4);
    }

    #[test]
    fn stabilizes_from_arbitrary_configs() {
        let g = generators::random_connected(10, 6, 2);
        for seed in 0..6 {
            let algo = CfgUnison::for_graph(&g);
            let k = algo.period();
            let init = algo.arbitrary_config(&g, seed);
            let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, seed);
            let out = sim
                .execution()
                .cap(2_000_000)
                .until(|gr, st| spec::safety_holds(gr, st, k))
                .run();
            assert!(out.reached, "seed {seed}: CFG unison failed to stabilize");
        }
    }

    #[test]
    fn safety_closed_and_live_after_stabilization() {
        let g = generators::ring(8);
        let algo = CfgUnison::for_graph(&g);
        let k = algo.period();
        let init = algo.arbitrary_config(&g, 5);
        let mut sim = Simulator::new(&g, algo, init, Daemon::RoundRobin, 1);
        let out = sim
            .execution()
            .cap(2_000_000)
            .until(|gr, st| spec::safety_holds(gr, st, k))
            .run();
        assert!(out.reached);
        let mut monitor = spec::LivenessMonitor::new(sim.states());
        for _ in 0..10_000 {
            match sim.step() {
                StepOutcome::Terminal => panic!("unison must not terminate"),
                StepOutcome::Progress { .. } => {
                    assert!(spec::safety_holds(&g, sim.states(), k));
                    monitor.observe(sim.states());
                }
            }
        }
        assert!(monitor.all_incremented_at_least(3));
    }

    #[test]
    fn from_gamma_init_no_resets_needed() {
        let g = generators::grid(3, 3);
        let algo = CfgUnison::for_graph(&g);
        let init = algo.initial_config(&g);
        let mut sim = Simulator::new(&g, algo, init, Daemon::Synchronous, 0);
        for _ in 0..1_000 {
            sim.step();
        }
        assert_eq!(
            sim.stats().moves_per_rule[RULE_CFG_RESET.index()],
            0,
            "no resets from the legitimate initial configuration"
        );
    }
}
