//! Columnar layout for [`MonoState`] (see `ssr_runtime::soa`).
//!
//! The mono-initiator product state transposes into one phase byte per
//! node plus whatever column set the input algorithm provides —
//! structurally the same composition [`MonoColumns`] ≈
//! `ssr_core::columns::ComposedColumns`, but over the baseline's wave
//! phases instead of SDR statuses.

use ssr_runtime::StateColumns;

use crate::mono_reset::{MonoState, Phase};

const PHASE_IDLE: u8 = 0;
const PHASE_REQ: u8 = 1;
const PHASE_RB: u8 = 2;
const PHASE_RF: u8 = 3;

fn encode_phase(phase: Phase) -> u8 {
    match phase {
        Phase::Idle => PHASE_IDLE,
        Phase::Req => PHASE_REQ,
        Phase::RB => PHASE_RB,
        Phase::RF => PHASE_RF,
    }
}

fn decode_phase(byte: u8) -> Phase {
    match byte {
        PHASE_IDLE => Phase::Idle,
        PHASE_REQ => Phase::Req,
        PHASE_RB => Phase::RB,
        PHASE_RF => Phase::RF,
        _ => unreachable!("MonoColumns only stores encoded phases"),
    }
}

/// Columnar [`MonoState`]: one phase byte per node plus the input
/// algorithm's own columns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonoColumns<C> {
    phases: Vec<u8>,
    inner: C,
}

impl<C> MonoColumns<C> {
    /// The phase bytes (`0 = Idle`, `1 = Req`, `2 = RB`, `3 = RF`).
    pub fn phases(&self) -> &[u8] {
        &self.phases
    }

    /// The input-algorithm component columns.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: StateColumns> StateColumns for MonoColumns<C> {
    type State = MonoState<C::State>;

    fn clear(&mut self) {
        self.phases.clear();
        self.inner.clear();
    }

    fn push(&mut self, state: &MonoState<C::State>) {
        self.phases.push(encode_phase(state.phase));
        self.inner.push(&state.inner);
    }

    fn len(&self) -> usize {
        self.phases.len()
    }

    fn get(&self, i: usize) -> MonoState<C::State> {
        MonoState {
            phase: decode_phase(self.phases[i]),
            inner: self.inner.get(i),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.phases.capacity() + self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_runtime::ScalarColumns;

    #[test]
    fn mono_columns_round_trip() {
        let states: Vec<MonoState<u64>> = vec![
            MonoState {
                phase: Phase::Idle,
                inner: 4,
            },
            MonoState {
                phase: Phase::Req,
                inner: 5,
            },
            MonoState {
                phase: Phase::RB,
                inner: 6,
            },
            MonoState {
                phase: Phase::RF,
                inner: 7,
            },
        ];
        let cols: MonoColumns<ScalarColumns<u64>> = MonoColumns::from_states(&states);
        assert_eq!(cols.len(), 4);
        assert_eq!(cols.to_states(), states);
        assert_eq!(cols.phases(), &[0, 1, 2, 3]);
        assert_eq!(cols.inner().values(), &[4, 5, 6, 7]);
        assert!(cols.heap_bytes() >= 4 + 4 * 8);
    }

    #[test]
    fn mono_columns_clear_and_reuse() {
        let mut cols: MonoColumns<ScalarColumns<u64>> = MonoColumns::default();
        cols.push(&MonoState {
            phase: Phase::RF,
            inner: 9,
        });
        cols.clear();
        assert!(cols.is_empty());
        cols.push(&MonoState {
            phase: Phase::Req,
            inner: 1,
        });
        assert_eq!(cols.get(0).phase, Phase::Req);
    }
}
