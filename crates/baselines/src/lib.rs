//! Baselines the SDR paper compares against (§1.2, §5.2).
//!
//! * [`CfgUnison`] — the Couvreur–Francez–Gouda-style self-stabilizing
//!   unison: the same increment rule as Algorithm U plus a *local reset*
//!   rule (`c_u := 0` on detected incoherence), with period `K > n²`.
//!   Boulinier's thesis shows this works under the distributed unfair
//!   daemon in `O(D·n)` rounds; its move complexity is the weak point
//!   (`O(D·n³ + α·n²)` for the parametric family, shown in \[23\]) because
//!   nothing coordinates concurrent resets — a process can be dragged
//!   into many successive reset cascades. This type therefore doubles
//!   as the **non-cooperative ablation** of experiment E10: it is
//!   exactly "unison with uncoordinated local resets instead of SDR".
//! * [`MonoReset`] — a mono-initiator reset in the spirit of Arora &
//!   Gouda \[4\]: inconsistency reports are forwarded to a fixed root
//!   through a BFS tree, which then runs a single global
//!   broadcast-feedback reset wave. Built here on a *pre-computed* tree
//!   (the original also self-stabilizes the tree; our substitution
//!   isolates the property being compared — single- vs multi-initiator
//!   reset coordination — and is documented in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use ssr_baselines::CfgUnison;
//! use ssr_graph::generators;
//! use ssr_runtime::{Daemon, Simulator};
//! use ssr_unison::spec;
//!
//! let g = generators::ring(6);
//! let algo = CfgUnison::for_graph(&g);
//! let k = algo.period();
//! let init = algo.arbitrary_config(&g, 7);
//! let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 3);
//! let out = sim.execution().cap(1_000_000).until(|gr, st| spec::safety_holds(gr, st, k)).run();
//! assert!(out.reached, "CFG unison stabilizes");
//! ```

#![forbid(unsafe_code)]

mod cfg_unison;
pub mod columns;
pub mod family;
mod mono_reset;

pub use cfg_unison::{CfgUnison, RULE_CFG_INC, RULE_CFG_RESET};
pub use columns::MonoColumns;
pub use family::{CfgUnisonFamily, MonoResetFamily};
pub use mono_reset::{MonoReset, MonoState, Phase};
