//! A mono-initiator (rooted) reset baseline in the spirit of Arora &
//! Gouda \[4\], for the multi- vs single-initiator comparison experiment.
//!
//! A fixed root owns every reset: inconsistency reports travel up a
//! pre-computed BFS tree (`Req` phase), the root answers with a
//! broadcast reset wave (`RB` down the tree, resetting the input
//! algorithm's state), feedback returns (`RF` up the tree), and a
//! completion wave re-opens the system (`Idle` down the tree).
//!
//! **Substitution note (DESIGN.md):** the original \[4\] also
//! self-stabilizes the spanning tree and handles arbitrary corruption
//! of the wave variables; we pin the tree and measure recovery from
//! *input-state* corruption only. This isolates exactly the property
//! the comparison is about — a single coordinator's round-trip latency
//! versus SDR's concurrent, locally-initiated resets — without
//! re-implementing a second full reset stack.

use std::fmt;

use ssr_core::ResetInput;
use ssr_graph::{Graph, NodeId};
use ssr_runtime::{Algorithm, RuleId, RuleMask, StateView};

/// Wave phase of a process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Phase {
    /// Not involved in a reset.
    #[default]
    Idle,
    /// Requesting a reset (report travelling toward the root).
    Req,
    /// Reset broadcast received (input state has been reinitialized).
    RB,
    /// Feedback sent (subtree fully reset).
    RF,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Idle => write!(f, "I"),
            Phase::Req => write!(f, "Q"),
            Phase::RB => write!(f, "B"),
            Phase::RF => write!(f, "F"),
        }
    }
}

/// Product state of the mono-initiator composition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MonoState<S> {
    /// Wave phase.
    pub phase: Phase,
    /// Input algorithm state.
    pub inner: S,
}

impl<S: fmt::Display> fmt::Display for MonoState<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}|{}⟩", self.phase, self.inner)
    }
}

/// `rule_Req`: forward an inconsistency report toward the root.
pub const RULE_REQ: RuleId = RuleId(0);
/// `rule_Start`: the root opens a reset wave.
pub const RULE_START: RuleId = RuleId(1);
/// `rule_RBcast`: receive the broadcast, reset the input state.
pub const RULE_RBCAST: RuleId = RuleId(2);
/// `rule_Fb`: feedback once the whole subtree has reset.
pub const RULE_FB: RuleId = RuleId(3);
/// `rule_Done`: completion wave re-opening the system.
pub const RULE_DONE: RuleId = RuleId(4);

const MONO_RULES: usize = 5;

/// Mono-initiator reset composed over an input algorithm `I`
/// (baseline for experiments comparing against `I ∘ SDR`).
#[derive(Clone, Debug)]
pub struct MonoReset<I> {
    input: I,
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl<I: ResetInput> MonoReset<I> {
    /// Builds the composition over a BFS tree of `graph` rooted at
    /// `root`.
    pub fn new(graph: &Graph, input: I, root: NodeId) -> Self {
        let n = graph.node_count();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    children[u.index()].push(v);
                    queue.push_back(v);
                }
            }
        }
        MonoReset {
            input,
            root,
            parent,
            children,
        }
    }

    /// The input algorithm.
    pub fn input(&self) -> &I {
        &self.input
    }

    /// The reset coordinator.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All processes idle with consistent input states.
    pub fn is_normal_config(&self, graph: &Graph, states: &[MonoState<I::State>]) -> bool {
        let view = ssr_runtime::ConfigView::new(graph, states);
        graph
            .nodes()
            .all(|u| states[u.index()].phase == Phase::Idle && self.p_icorrect_at(u, &view))
    }

    /// The designated initial configuration: idle, input at `γ_init`.
    pub fn initial_config(&self, graph: &Graph) -> Vec<MonoState<I::State>> {
        graph
            .nodes()
            .map(|u| MonoState {
                phase: Phase::Idle,
                inner: self.input.initial_state(u),
            })
            .collect()
    }

    fn p_icorrect_at<V: StateView<MonoState<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        let iv = ssr_runtime::MapView::new(view, inner_of);
        self.input.p_icorrect(u, &iv)
    }

    fn phase<V: StateView<MonoState<I::State>>>(&self, view: &V, v: NodeId) -> Phase {
        view.state(v).phase
    }

    fn child_requesting<V: StateView<MonoState<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.children[u.index()]
            .iter()
            .any(|&c| self.phase(view, c) == Phase::Req)
    }

    fn all_children_fb<V: StateView<MonoState<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.children[u.index()]
            .iter()
            .all(|&c| self.phase(view, c) == Phase::RF)
    }
}

fn inner_of<S>(s: &MonoState<S>) -> &S {
    &s.inner
}

impl<I: ResetInput> Algorithm for MonoReset<I> {
    type State = MonoState<I::State>;

    fn rule_count(&self) -> usize {
        MONO_RULES + self.input.rule_count()
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        match rule {
            RULE_REQ => "rule_Req",
            RULE_START => "rule_Start",
            RULE_RBCAST => "rule_RBcast",
            RULE_FB => "rule_Fb",
            RULE_DONE => "rule_Done",
            r => self.input.rule_name(RuleId(r.0 - MONO_RULES as u8)),
        }
    }

    fn enabled_mask<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> RuleMask {
        let phase = self.phase(view, u);
        let is_root = u == self.root;
        let trigger =
            !self.p_icorrect_at(u, view) || self.child_requesting(u, view) || phase == Phase::Req;
        let parent_phase = self.parent[u.index()].map(|p| self.phase(view, p));

        let mut mask = RuleMask::NONE
            .with_if(
                RULE_REQ,
                !is_root
                    && phase == Phase::Idle
                    && (!self.p_icorrect_at(u, view) || self.child_requesting(u, view))
                    && parent_phase != Some(Phase::RB),
            )
            .with_if(
                RULE_START,
                is_root && matches!(phase, Phase::Idle | Phase::Req) && trigger,
            )
            .with_if(
                RULE_RBCAST,
                !is_root
                    && matches!(phase, Phase::Idle | Phase::Req)
                    && parent_phase == Some(Phase::RB),
            )
            .with_if(RULE_FB, phase == Phase::RB && self.all_children_fb(u, view))
            .with_if(
                RULE_DONE,
                phase == Phase::RF && (is_root || parent_phase == Some(Phase::Idle)),
            );

        // Input rules run only when the closed neighborhood is idle and
        // the local state is consistent (mirror of SDR's gate).
        let clean = view
            .graph()
            .closed_neighborhood(u)
            .all(|v| self.phase(view, v) == Phase::Idle);
        if mask.is_empty() && clean && self.p_icorrect_at(u, view) {
            let iv = ssr_runtime::MapView::new(view, inner_of);
            mask = RuleMask(self.input.enabled_mask(u, &iv).0 << MONO_RULES);
        }
        mask
    }

    fn apply<V: StateView<Self::State>>(&self, u: NodeId, view: &V, rule: RuleId) -> Self::State {
        let s = view.state(u);
        match rule {
            RULE_REQ => MonoState {
                phase: Phase::Req,
                inner: s.inner.clone(),
            },
            RULE_START | RULE_RBCAST => MonoState {
                phase: Phase::RB,
                inner: self.input.reset_state(u),
            },
            RULE_FB => MonoState {
                phase: Phase::RF,
                inner: s.inner.clone(),
            },
            RULE_DONE => MonoState {
                phase: Phase::Idle,
                inner: s.inner.clone(),
            },
            r => {
                let iv = ssr_runtime::MapView::new(view, inner_of);
                MonoState {
                    phase: s.phase,
                    inner: self.input.apply(u, &iv, RuleId(r.0 - MONO_RULES as u8)),
                }
            }
        }
    }
}

impl ssr_runtime::exhaustive::ExploreState for Phase {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            Phase::Idle => 0,
            Phase::Req => 1,
            Phase::RB => 2,
            Phase::RF => 3,
        });
    }
}

impl<S: ssr_runtime::exhaustive::ExploreState> ssr_runtime::exhaustive::ExploreState
    for MonoState<S>
{
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        self.phase.encode(out);
        self.inner.encode(out);
    }
}

#[cfg(test)]
mod encode_tests {
    use super::*;
    use ssr_runtime::exhaustive::ExploreState;

    fn words<S: ExploreState>(s: &S) -> Vec<u64> {
        let mut out = Vec::new();
        s.encode(&mut out);
        out
    }

    #[test]
    fn mono_state_encodes_phase_and_inner() {
        let a = MonoState {
            phase: Phase::Idle,
            inner: 2u64,
        };
        let b = MonoState {
            phase: Phase::RB,
            inner: 2u64,
        };
        assert_ne!(words(&a), words(&b));
        let c = MonoState {
            phase: Phase::Idle,
            inner: 3u64,
        };
        assert_ne!(words(&a), words(&c));
        // All four phases are distinct words.
        let mut seen: Vec<Vec<u64>> = Vec::new();
        for phase in [Phase::Idle, Phase::Req, Phase::RB, Phase::RF] {
            let w = words(&phase);
            assert!(!seen.contains(&w), "{phase:?} collides");
            seen.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::toys::{Agreement, BoundedCounter};
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, Simulator};

    fn corrupt_inner<I: ResetInput<State = u32>>(
        sim: &mut Simulator<'_, MonoReset<I>>,
        u: NodeId,
        value: u32,
    ) {
        let mut s = *sim.state(u);
        s.inner = value;
        sim.inject(u, s);
    }

    #[test]
    fn tree_structure() {
        let g = generators::path(4);
        let mono = MonoReset::new(&g, Agreement::new(3), NodeId(0));
        assert_eq!(mono.root(), NodeId(0));
        assert_eq!(mono.parent[3], Some(NodeId(2)));
        assert_eq!(mono.children[0], vec![NodeId(1)]);
    }

    #[test]
    fn full_wave_recovers_from_corruption() {
        let g = generators::path(5);
        let mono = MonoReset::new(&g, Agreement::new(4), NodeId(0));
        let check = MonoReset::new(&g, Agreement::new(4), NodeId(0));
        let init = mono.initial_config(&g);
        let mut sim = Simulator::new(&g, mono, init, Daemon::RandomSubset { p: 0.7 }, 3);
        assert!(sim.is_terminal(), "agreement + idle = nothing to do");
        corrupt_inner(&mut sim, NodeId(4), 2);
        let out = sim
            .execution()
            .cap(100_000)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        assert!(out.reached, "mono reset must recover");
        assert!(
            sim.states().iter().all(|s| s.inner == 0),
            "wave reset everyone"
        );
    }

    #[test]
    fn request_travels_to_root_before_wave() {
        let g = generators::path(3);
        let mono = MonoReset::new(&g, Agreement::new(4), NodeId(0));
        let init = mono.initial_config(&g);
        let mut sim = Simulator::new(&g, mono, init, Daemon::LexMin, 0);
        corrupt_inner(&mut sim, NodeId(2), 3);
        // With LexMin the lowest-index enabled process moves; the wave
        // still has to pass through Req at 2 and 1 before the root fires.
        let mut saw_req = false;
        for _ in 0..200 {
            if sim.states().iter().any(|s| s.phase == Phase::Req) {
                saw_req = true;
            }
            if sim.is_terminal() {
                break;
            }
            sim.step();
        }
        assert!(saw_req, "requests must be forwarded to the root");
        assert!(sim.states().iter().all(|s| s.phase == Phase::Idle));
    }

    #[test]
    fn inner_algorithm_resumes_after_wave() {
        let g = generators::ring(6);
        let mono = MonoReset::new(&g, BoundedCounter::new(4), NodeId(0));
        let init = mono.initial_config(&g);
        let mut sim = Simulator::new(&g, mono, init, Daemon::RandomSubset { p: 0.6 }, 9);
        // Corrupt one counter beyond the tolerated drift.
        let mut s = *sim.state(NodeId(3));
        s.inner = 3;
        sim.inject(NodeId(3), s);
        let out = sim.execution().cap(200_000).run();
        assert!(out.terminal);
        // Terminal = all counters at the cap (they restarted from 0).
        assert!(sim.states().iter().all(|s| s.inner == 4));
        assert!(sim.states().iter().all(|s| s.phase == Phase::Idle));
    }

    #[test]
    fn no_wave_without_inconsistency() {
        let g = generators::grid(3, 3);
        let mono = MonoReset::new(&g, BoundedCounter::new(3), NodeId(4));
        let init = mono.initial_config(&g);
        let mut sim = Simulator::new(&g, mono, init, Daemon::Synchronous, 0);
        sim.execution().cap(10_000).run();
        for rule in [RULE_REQ, RULE_START, RULE_RBCAST] {
            assert_eq!(sim.stats().moves_per_rule[rule.index()], 0);
        }
    }
}
