//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ssr_graph::{generators, metrics, GraphBuilder, NodeId};

proptest! {
    /// Every random connected graph is simple, undirected, connected,
    /// with consistent ports.
    #[test]
    fn random_connected_valid(n in 1usize..40, extra in 0usize..40, seed in 0u64..1000) {
        let g = generators::random_connected(n, extra, seed);
        prop_assert_eq!(g.node_count(), n);
        // Symmetry + port consistency.
        for u in g.nodes() {
            for (port, &v) in g.neighbors(u).iter().enumerate() {
                prop_assert_ne!(u, v, "no self-loops");
                prop_assert!(g.are_neighbors(v, u), "undirected");
                prop_assert_eq!(g.neighbor_at(u, port), v);
                prop_assert_eq!(g.port_of(u, v), Some(port));
            }
            // Sorted, deduplicated adjacency.
            let nbrs = g.neighbors(u);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
        // Edge count = half the degree sum.
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Trees have exactly n−1 edges and diameter < n.
    #[test]
    fn random_tree_props(n in 1usize..60, seed in 0u64..500) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert!((metrics::diameter(&g) as usize) < n);
    }

    /// BFS distances satisfy the 1-Lipschitz property across edges.
    #[test]
    fn bfs_distances_lipschitz(n in 2usize..30, extra in 0usize..20, seed in 0u64..200) {
        let g = generators::random_connected(n, extra, seed);
        let dist = metrics::bfs_distances(&g, NodeId(0));
        for (u, v) in g.edges() {
            let du = dist[u.index()] as i64;
            let dv = dist[v.index()] as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }

    /// Diameter bounds: radius ≤ diameter ≤ 2·radius, diameter ≤ n−1.
    #[test]
    fn diameter_radius_relations(n in 2usize..25, extra in 0usize..15, seed in 0u64..200) {
        let g = generators::random_connected(n, extra, seed);
        let d = metrics::diameter(&g);
        let r = metrics::radius(&g);
        prop_assert!(r <= d);
        prop_assert!(d <= 2 * r);
        prop_assert!((d as usize) < n);
    }

    /// The builder accepts any valid edge list and round-trips it.
    #[test]
    fn builder_roundtrip(n in 2usize..20, seed in 0u64..200) {
        let g = generators::random_connected(n, n, seed);
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let rebuilt = GraphBuilder::new(n).edges(edges).build().unwrap();
        prop_assert_eq!(rebuilt, g);
    }

    /// gnp stays connected for every p.
    #[test]
    fn gnp_always_connected(n in 1usize..25, p in 0.0f64..1.0, seed in 0u64..100) {
        // Construction succeeding implies connectivity (builder checks).
        let g = generators::gnp_connected(n, p, seed);
        prop_assert_eq!(g.node_count(), n);
    }
}
