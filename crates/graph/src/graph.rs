//! The immutable [`Graph`] type and [`NodeId`] handle.

use std::fmt;

/// Identifier of a process (node) in the communication graph.
///
/// `NodeId` is an *index handle*, not an application-level identifier.
/// Anonymous-network algorithms (SDR, unison) must not interpret it;
/// identified-network algorithms (FGA) carry a separate id table so that
/// tests can decouple identifiers from indices.
///
/// # Examples
///
/// ```
/// use ssr_graph::NodeId;
/// let u = NodeId(3);
/// assert_eq!(u.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node's index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A simple undirected connected graph in CSR (compressed sparse row) form.
///
/// Invariants (checked at construction by [`crate::GraphBuilder`]):
///
/// * at least one node;
/// * no self-loops, no parallel edges;
/// * connected;
/// * adjacency lists sorted ascending (deterministic iteration order).
///
/// The adjacency list of `u` is the *port space* of `u`: algorithms may
/// refer to the neighbor behind port `k` of `u` without knowing a global
/// name for it (indirect naming, §2.2 of the paper).
///
/// # Examples
///
/// ```
/// use ssr_graph::{GraphBuilder, NodeId};
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .build()
///     .expect("valid graph");
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// assert!(g.are_neighbors(NodeId(0), NodeId(1)));
/// assert!(!g.are_neighbors(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u] .. offsets[u + 1]` indexes `nbrs` for node `u`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted adjacency lists.
    nbrs: Vec<NodeId>,
    /// Number of undirected edges `m`.
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_parts(offsets: Vec<u32>, nbrs: Vec<NodeId>, edge_count: usize) -> Self {
        Graph {
            offsets,
            nbrs,
            edge_count,
        }
    }

    /// Number of processes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids `0 .. n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The sorted open neighborhood `N(u)`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.nbrs[lo..hi]
    }

    /// Iterator over the closed neighborhood `N[u] = N(u) ∪ {u}`.
    ///
    /// `u` itself is yielded first.
    pub fn closed_neighborhood(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(u).chain(self.neighbors(u).iter().copied())
    }

    /// Degree `δ_u` of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Whether `{u, v} ∈ E`.
    ///
    /// Runs in `O(log δ_u)` (binary search over the sorted list).
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The neighbor of `u` behind local port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree(u)`.
    #[inline]
    pub fn neighbor_at(&self, u: NodeId, port: usize) -> NodeId {
        self.neighbors(u)[port]
    }

    /// The local port of `v` in `u`'s adjacency list, if `v ∈ N(u)`.
    ///
    /// This realizes the paper's `α_u(v)` indirect-naming map.
    pub fn port_of(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.neighbors(u).binary_search(&v).ok()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ n: {}, m: {} }}",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn node_id_roundtrip() {
        let u = NodeId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(format!("{u}"), "42");
        assert_eq!(format!("{u:?}"), "n42");
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new(4)
            .edge(3, 0)
            .edge(0, 2)
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn closed_neighborhood_starts_with_self() {
        let g = triangle();
        let cn: Vec<_> = g.closed_neighborhood(NodeId(1)).collect();
        assert_eq!(cn, vec![NodeId(1), NodeId(0), NodeId(2)]);
    }

    #[test]
    fn ports_roundtrip() {
        let g = triangle();
        for u in g.nodes() {
            for (k, &v) in g.neighbors(u).iter().enumerate() {
                assert_eq!(g.port_of(u, v), Some(k));
                assert_eq!(g.neighbor_at(u, k), v);
            }
        }
        assert_eq!(g.port_of(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn edges_enumerated_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
            ]
        );
    }

    #[test]
    fn degree_and_max_degree() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build()
            .unwrap();
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.max_degree(), 3);
    }
}
