//! Topology generators used throughout the experiment harness.
//!
//! Every generator returns a validated [`Graph`] (simple, undirected,
//! connected). Random generators are fully deterministic given their
//! `seed` (a private splitmix64 stream; the richer simulation PRNG lives
//! in `ssr-runtime::rng` — duplicating the 15-line mixer here keeps the
//! crate layering acyclic).
//!
//! # Examples
//!
//! ```
//! use ssr_graph::generators;
//!
//! let ring = generators::ring(8);
//! let grid = generators::grid(3, 4);
//! let tree = generators::random_tree(20, 0xBEEF);
//! assert_eq!(tree.edge_count(), 19);
//! assert_eq!(grid.node_count(), 12);
//! assert_eq!(ring.edge_count(), 8);
//! ```

use crate::{Graph, GraphBuilder};

/// Minimal splitmix64 stream for the deterministic random generators.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), by rejection-free
    /// multiply-shift (slight bias < 2^-32 is irrelevant here).
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn must(b: GraphBuilder) -> Graph {
    b.build().expect("generator produced an invalid graph")
}

/// Path `P_n` (line): `0 - 1 - … - (n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path requires n > 0");
    must(GraphBuilder::new(n).edges((1..n).map(|i| (i as u32 - 1, i as u32))))
}

/// Ring (cycle) `C_n`.
///
/// # Panics
///
/// Panics if `n < 3` (a cycle needs at least three nodes to stay simple).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring requires n >= 3");
    must(GraphBuilder::new(n).edges((0..n).map(|i| (i as u32, ((i + 1) % n) as u32))))
}

/// Star `K_{1,n-1}`: node 0 is the hub.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star requires n >= 2");
    must(GraphBuilder::new(n).edges((1..n).map(|i| (0, i as u32))))
}

/// Complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete requires n > 0");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b = b.edge(u as u32, v as u32);
        }
    }
    must(b)
}

/// Complete bipartite graph `K_{a,b}` (left part `0..a`, right `a..a+b`).
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(
        a > 0 && b > 0,
        "complete_bipartite requires both parts nonempty"
    );
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g = g.edge(u as u32, (a + v) as u32);
        }
    }
    must(g)
}

/// Balanced binary tree on `n` nodes (node `i` has parent `(i-1)/2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n > 0, "binary_tree requires n > 0");
    must(GraphBuilder::new(n).edges((1..n).map(|i| (((i - 1) / 2) as u32, i as u32))))
}

/// `w × h` grid (4-neighborhood).
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid requires positive dimensions");
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b = b.edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b = b.edge(id(x, y), id(x, y + 1));
            }
        }
    }
    must(b)
}

/// `w × h` torus (grid with wrap-around rows/columns).
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3` (smaller wrap-arounds create parallel
/// edges).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus requires dimensions >= 3");
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            b = b.edge(id(x, y), id((x + 1) % w, y));
            b = b.edge(id(x, y), id(x, (y + 1) % h));
        }
    }
    must(b)
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!(d > 0 && d <= 20, "hypercube requires 1 <= d <= 20");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b = b.edge(u as u32, v as u32);
            }
        }
    }
    must(b)
}

/// Lollipop graph: a clique of `clique` nodes with a pendant path of
/// `tail` extra nodes attached to clique node 0.
///
/// A classical worst-case topology: large Δ near the clique, large D via
/// the tail.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 2, "lollipop requires clique >= 2");
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b = b.edge(u as u32, v as u32);
        }
    }
    for i in 0..tail {
        let prev = if i == 0 { 0 } else { clique + i - 1 };
        b = b.edge(prev as u32, (clique + i) as u32);
    }
    must(b)
}

/// Caterpillar: a spine path of `spine` nodes (`0 … spine-1`), each
/// carrying `legs` pendant leaves, `spine * (1 + legs)` nodes total.
/// Leaf `j` of spine node `i` is node `spine + i * legs + j`.
///
/// Caterpillars mix the high-diameter behavior of paths with star-like
/// local contention at every spine node — a classic small worst-case
/// family for wave algorithms.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar requires spine > 0");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b = b.edge(i as u32 - 1, i as u32);
    }
    for i in 0..spine {
        for j in 0..legs {
            b = b.edge(i as u32, (spine + i * legs + j) as u32);
        }
    }
    must(b)
}

/// Wheel `W_n`: node 0 is the hub, nodes `1 … n-1` form a cycle, and
/// every rim node is adjacent to the hub.
///
/// Diameter 2 with maximum degree `n − 1`: the hub sees every reset
/// wave at once while rim waves can still chase each other around the
/// cycle.
///
/// # Panics
///
/// Panics if `n < 4` (the rim needs at least three nodes to stay a
/// simple cycle).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel requires n >= 4");
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        let u = (1 + i) as u32;
        let v = (1 + (i + 1) % rim) as u32;
        b = b.edge(u, v);
        b = b.edge(0, u);
    }
    must(b)
}

/// Uniform random labelled tree on `n` nodes (random attachment).
///
/// Each node `i >= 1` attaches to a uniformly random earlier node, which
/// yields a random recursive tree — diameters around `O(log n)`,
/// complementing [`path`] for the high-diameter end.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "random_tree requires n > 0");
    let mut rng = SplitMix64::new(seed ^ 0x7EE5_0000);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.below(i as u64) as u32;
        b = b.edge(parent, i as u32);
    }
    must(b)
}

/// Random connected graph: a [`random_tree`] plus `extra` distinct random
/// non-tree edges (fewer if the graph saturates).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n > 0, "random_connected requires n > 0");
    let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00);
    let mut edges: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    for i in 1..n {
        let parent = rng.below(i as u64) as u32;
        edges.insert((parent.min(i as u32), parent.max(i as u32)));
    }
    let max_edges = n * (n - 1) / 2;
    let target = (edges.len() + extra).min(max_edges);
    let mut attempts = 0usize;
    while edges.len() < target && attempts < 64 * target + 64 {
        attempts += 1;
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    must(GraphBuilder::new(n).edges(edges))
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: samples each edge
/// independently with probability `p`, then links any leftover components
/// with uniformly random bridge edges (so small `p` still yields a valid
/// topology instead of looping forever).
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not within `0.0..=1.0`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "gnp_connected requires n > 0");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut rng = SplitMix64::new(seed ^ 0x6E9_0000);
    let threshold = (p * (u64::MAX as f64)) as u64;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.next_u64() <= threshold {
                edges.push((u as u32, v as u32));
            }
        }
    }
    // Union-find to detect components, then stitch them together.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(u, v) in &edges {
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    let mut roots: Vec<usize> = (0..n).filter(|&x| find(&mut parent, x) == x).collect();
    while roots.len() > 1 {
        let a = roots[rng.below(roots.len() as u64) as usize];
        let b = loop {
            let b = roots[rng.below(roots.len() as u64) as usize];
            if b != a {
                break b;
            }
        };
        edges.push((a.min(b) as u32, a.max(b) as u32));
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
        roots = (0..n).filter(|&x| find(&mut parent, x) == x).collect();
    }
    must(GraphBuilder::new(n).edges(edges))
}

/// The standard topology suite used by the experiment harness.
///
/// Returns `(label, graph)` pairs, sized around `n` nodes (exact size may
/// differ for grids/hypercubes, which need composite node counts).
pub fn standard_suite(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let mut out: Vec<(&'static str, Graph)> = Vec::new();
    if n >= 3 {
        out.push(("ring", ring(n)));
    }
    out.push(("path", path(n)));
    if n >= 2 {
        out.push(("star", star(n)));
    }
    out.push(("complete", complete(n.min(64))));
    out.push(("binary-tree", binary_tree(n)));
    out.push(("random-tree", random_tree(n, seed)));
    out.push(("random-sparse", random_connected(n, n / 2, seed)));
    out.push(("caterpillar", caterpillar((n / 2).max(1), 1)));
    if n >= 4 {
        out.push(("wheel", wheel(n)));
    }
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    out.push(("grid", grid(side, side)));
    if side >= 3 {
        out.push(("torus", torus(side, side)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(metrics::diameter(&g), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), 3);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), 2);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(metrics::diameter(&g), 1);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), 2);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::diameter(&g), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert_eq!(metrics::diameter(&g), 5);
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert_eq!(metrics::diameter(&g), 4);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(metrics::diameter(&g), 4);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert_eq!(metrics::diameter(&g), 4);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, 2);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 2 + 6); // spine edges + legs
                                           // Spine interior node: 2 spine neighbors + 2 legs.
        assert_eq!(g.degree(crate::NodeId(1)), 4);
        // Leaves are pendant.
        assert_eq!(g.degree(crate::NodeId(8)), 1);
        assert_eq!(metrics::diameter(&g), 4); // leaf-spine-spine-spine-leaf
                                              // Degenerate: no legs is just a path.
        assert_eq!(caterpillar(4, 0), path(4));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10); // 5 rim + 5 spokes
        assert_eq!(g.degree(crate::NodeId(0)), 5);
        assert!((1..6).all(|i| g.degree(crate::NodeId(i)) == 3));
        assert_eq!(metrics::diameter(&g), 2);
        // Smallest wheel: K_4.
        assert_eq!(wheel(4), complete(4));
    }

    #[test]
    fn random_tree_is_tree_and_deterministic() {
        let g1 = random_tree(50, 7);
        let g2 = random_tree(50, 7);
        let g3 = random_tree(50, 8);
        assert_eq!(g1.edge_count(), 49);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn random_connected_has_extra_edges() {
        let g = random_connected(30, 10, 3);
        assert!(g.edge_count() >= 30); // 29 tree edges + some extras
    }

    #[test]
    fn gnp_connected_is_connected_even_for_tiny_p() {
        // The builder itself rejects disconnected graphs, so construction
        // succeeding is the assertion.
        let g = gnp_connected(40, 0.01, 11);
        assert_eq!(g.node_count(), 40);
        let dense = gnp_connected(20, 0.9, 11);
        assert!(dense.edge_count() > 150);
    }

    #[test]
    fn standard_suite_covers_families() {
        let suite = standard_suite(16, 5);
        assert!(suite.len() >= 8);
        for (label, g) in &suite {
            assert!(g.node_count() >= 4, "{label} too small");
        }
    }
}
