//! Validated construction of [`Graph`] values.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::{Graph, NodeId};

/// Errors rejected by [`GraphBuilder::build`].
///
/// The computational model of the paper requires a *simple undirected
/// connected* graph (§2.1); every violation is a distinct variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no node.
    Empty,
    /// An edge endpoint is `>= n`.
    NodeOutOfRange { node: u32, n: usize },
    /// An edge `{u, u}` was added.
    SelfLoop { node: u32 },
    /// The same undirected edge was added twice.
    ParallelEdge { u: u32, v: u32 },
    /// The graph is not connected.
    Disconnected { reachable: usize, n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::ParallelEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::Disconnected { reachable, n } => {
                write!(
                    f,
                    "graph is disconnected: only {reachable} of {n} nodes reachable"
                )
            }
        }
    }
}

impl Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use ssr_graph::GraphBuilder;
///
/// # fn main() -> Result<(), ssr_graph::GraphError> {
/// let g = GraphBuilder::new(4)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(2, 3)
///     .build()?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes (ids `0 .. n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`. Order of endpoints is irrelevant.
    #[must_use]
    pub fn edge(mut self, u: u32, v: u32) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator of endpoint pairs.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = (u32, u32)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph is empty, an endpoint is out
    /// of range, an edge is a self-loop or duplicated, or the graph is
    /// disconnected.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        let n = self.n;
        let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (a, b) in &self.edges {
            let (a, b) = (*a, *b);
            if a as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: a, n });
            }
            if b as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(GraphError::ParallelEdge { u: key.0, v: key.1 });
            }
            adj[a as usize].push(NodeId(b));
            adj[b as usize].push(NodeId(a));
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        // Connectivity check by BFS from node 0.
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[0] = true;
        queue.push_back(NodeId(0));
        let mut reachable = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    reachable += 1;
                    queue.push_back(v);
                }
            }
        }
        if reachable != n {
            return Err(GraphError::Disconnected { reachable, n });
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbrs = Vec::with_capacity(2 * seen.len());
        offsets.push(0u32);
        for list in &adj {
            nbrs.extend_from_slice(list);
            offsets.push(u32::try_from(nbrs.len()).expect("edge count exceeds u32::MAX"));
        }
        Ok(Graph::from_parts(offsets, nbrs, seen.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new(0).build(), Err(GraphError::Empty));
    }

    #[test]
    fn single_node_is_connected() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            GraphBuilder::new(2).edge(0, 2).build(),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            GraphBuilder::new(2).edge(1, 1).build(),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_parallel_edges_in_both_orders() {
        assert_eq!(
            GraphBuilder::new(2).edge(0, 1).edge(1, 0).build(),
            Err(GraphError::ParallelEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn rejects_disconnected() {
        assert_eq!(
            GraphBuilder::new(4).edge(0, 1).edge(2, 3).build(),
            Err(GraphError::Disconnected { reachable: 2, n: 4 })
        );
    }

    #[test]
    fn builds_from_iterator() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(2, 3)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("disconnected"));
    }
}
