//! Greedy coloring and neighborhood-conflict partitioning.
//!
//! In the locally shared memory model (§2.2) a guard reads only the
//! closed neighborhood of its process, so two moves at **non-adjacent**
//! processes commute: neither read set contains the other's write.
//! Partitioning a step's selected set by adjacency therefore splits it
//! into batches that could execute in place, in any order, without
//! changing the step's outcome — the conflict-graph decomposition that
//! the parallel apply phase in `ssr-runtime` verifies against and that
//! the scale benches report as available intra-step parallelism.
//!
//! The partition is a greedy coloring of the *induced* subgraph on the
//! selected nodes: first-fit in selection order, which uses at most
//! `Δ_sel + 1` classes (`Δ_sel` = the maximum number of selected
//! neighbors of any selected node). [`ConflictPartitioner`] keeps its
//! scratch state across calls so the per-step cost is `O(Σ deg(u))`
//! with no allocation after warm-up.

use crate::bitset::Bitset;
use crate::graph::{Graph, NodeId};

/// Sentinel: node not colored in the current partition.
const UNCOLORED: u32 = u32::MAX;

/// A whole-graph greedy coloring (first-fit in index order).
///
/// Adjacent nodes always receive distinct colors, and at most
/// `Δ + 1` colors are used.
///
/// # Examples
///
/// ```
/// use ssr_graph::{coloring, generators};
///
/// let g = generators::ring(6);
/// let c = coloring::greedy_coloring(&g);
/// assert!(c.num_colors <= 3); // Δ + 1 on a ring
/// for (u, v) in g.edges() {
///     assert_ne!(c.colors[u.index()], c.colors[v.index()]);
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each node, indexed by node.
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: u32,
}

/// Colors every node of `g` greedily (first-fit in index order).
pub fn greedy_coloring(g: &Graph) -> Coloring {
    let mut p = ConflictPartitioner::new(g.node_count());
    let all: Vec<NodeId> = g.nodes().collect();
    let num_colors = p.partition(g, &all);
    Coloring {
        colors: all.iter().map(|&u| p.color_of(u)).collect(),
        num_colors,
    }
}

/// Reusable conflict-partition scratch state.
///
/// One call to [`ConflictPartitioner::partition`] colors a selected
/// set against the edges of its induced subgraph; nodes of equal color
/// are pairwise non-adjacent (a *conflict-free batch*).
///
/// # Examples
///
/// ```
/// use ssr_graph::{coloring::ConflictPartitioner, generators, NodeId};
///
/// let g = generators::path(5);
/// let mut p = ConflictPartitioner::new(g.node_count());
/// // 1 — 2 — 3 are mutually conflicting along the path.
/// let selected = [NodeId(1), NodeId(2), NodeId(3)];
/// let classes = p.partition(&g, &selected);
/// assert_eq!(classes, 2);
/// assert_ne!(p.color_of(NodeId(1)), p.color_of(NodeId(2)));
/// assert_eq!(p.color_of(NodeId(1)), p.color_of(NodeId(3)));
/// // Non-adjacent selections need a single class.
/// assert_eq!(p.partition(&g, &[NodeId(0), NodeId(2), NodeId(4)]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ConflictPartitioner {
    /// Color per node; valid only for nodes stamped in this round.
    color: Vec<u32>,
    /// Round stamp per node (dodges an `O(n)` reset per call).
    stamp: Vec<u64>,
    round: u64,
    /// `used[c] == seq` marks color `c` taken by a neighbor of the
    /// node currently being colored.
    used: Vec<u64>,
    seq: u64,
}

impl ConflictPartitioner {
    /// Scratch for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        ConflictPartitioner {
            color: vec![UNCOLORED; n],
            stamp: vec![0; n],
            round: 0,
            used: Vec::new(),
            seq: 0,
        }
    }

    /// Partitions `selected` into conflict-free classes by greedy
    /// first-fit coloring of the induced subgraph, in selection order.
    /// Returns the number of classes; per-node colors are readable
    /// through [`ConflictPartitioner::color_of`] until the next call.
    ///
    /// Duplicate entries keep their first color. Empty selections use
    /// zero classes.
    ///
    /// # Panics
    ///
    /// Panics if a selected node's index is `>= n` (the capacity given
    /// to [`ConflictPartitioner::new`]).
    pub fn partition(&mut self, g: &Graph, selected: &[NodeId]) -> u32 {
        self.round += 1;
        let round = self.round;
        let mut num_colors = 0u32;
        for &u in selected {
            if self.stamp[u.index()] == round {
                continue; // duplicate entry
            }
            self.stamp[u.index()] = round;
            self.seq += 1;
            let seq = self.seq;
            for &v in g.neighbors(u) {
                if self.stamp[v.index()] == round {
                    let c = self.color[v.index()] as usize;
                    if c >= self.used.len() {
                        self.used.resize(c + 1, 0);
                    }
                    self.used[c] = seq;
                }
            }
            let mut c = 0u32;
            while (c as usize) < self.used.len() && self.used[c as usize] == seq {
                c += 1;
            }
            self.color[u.index()] = c;
            num_colors = num_colors.max(c + 1);
        }
        num_colors
    }

    /// The class of `u` from the most recent partition.
    ///
    /// # Panics
    ///
    /// Panics if `u` was not part of the most recent selection.
    pub fn color_of(&self, u: NodeId) -> u32 {
        assert!(
            self.stamp[u.index()] == self.round && self.round > 0,
            "{u:?} was not in the most recent partition"
        );
        self.color[u.index()]
    }

    /// Materializes the classes of the most recent partition, in class
    /// order (allocates; meant for tests and diagnostics).
    pub fn classes(&self, selected: &[NodeId]) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        let mut seen = Bitset::new(self.color.len());
        for &u in selected {
            if seen.contains(u.index()) {
                continue;
            }
            seen.insert(u.index());
            let c = self.color_of(u) as usize;
            if c >= out.len() {
                out.resize_with(c + 1, Vec::new);
            }
            out[c].push(u);
        }
        out
    }
}

/// Checks that `classes` is a conflict-free partition of `selected`
/// under `g`: classes cover the selection exactly and no class
/// contains an edge. Used by debug assertions and property tests.
pub fn is_conflict_free(g: &Graph, selected: &[NodeId], classes: &[Vec<NodeId>]) -> bool {
    let mut seen = Bitset::new(g.node_count());
    let mut covered = 0usize;
    for class in classes {
        for (i, &u) in class.iter().enumerate() {
            if seen.contains(u.index()) {
                return false; // duplicated across classes
            }
            seen.insert(u.index());
            covered += 1;
            for &v in &class[i + 1..] {
                if g.are_neighbors(u, v) {
                    return false;
                }
            }
        }
    }
    let mut distinct = Bitset::new(g.node_count());
    for &u in selected {
        distinct.insert(u.index());
    }
    covered == distinct.count() && selected.iter().all(|&u| seen.contains(u.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn whole_graph_coloring_is_proper_and_bounded() {
        for g in [
            generators::ring(9),
            generators::star(7),
            generators::complete(5),
            generators::random_connected(20, 15, 3),
        ] {
            let c = greedy_coloring(&g);
            assert!(c.num_colors as usize <= g.max_degree() + 1);
            for (u, v) in g.edges() {
                assert_ne!(c.colors[u.index()], c.colors[v.index()], "edge {u:?}-{v:?}");
            }
            assert_eq!(
                c.colors.iter().copied().max().unwrap() + 1,
                c.num_colors,
                "num_colors is the exact count"
            );
        }
    }

    #[test]
    fn partition_classes_are_independent_sets() {
        let g = generators::random_connected(24, 20, 7);
        let mut p = ConflictPartitioner::new(g.node_count());
        // A deterministic pseudo-random selection.
        let selected: Vec<NodeId> = g.nodes().filter(|u| u.index() % 3 != 1).collect();
        let k = p.partition(&g, &selected);
        let classes = p.classes(&selected);
        assert_eq!(classes.len() as u32, k);
        assert!(is_conflict_free(&g, &selected, &classes));
        assert!(classes.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn partitioner_is_reusable_and_deterministic() {
        let g = generators::torus(4, 4);
        let mut p = ConflictPartitioner::new(g.node_count());
        let sel: Vec<NodeId> = g.nodes().collect();
        let a = p.partition(&g, &sel);
        let colors_a: Vec<u32> = sel.iter().map(|&u| p.color_of(u)).collect();
        let b = p.partition(&g, &sel);
        let colors_b: Vec<u32> = sel.iter().map(|&u| p.color_of(u)).collect();
        assert_eq!(a, b);
        assert_eq!(colors_a, colors_b);
    }

    #[test]
    fn empty_and_singleton_selections() {
        let g = generators::path(4);
        let mut p = ConflictPartitioner::new(g.node_count());
        assert_eq!(p.partition(&g, &[]), 0);
        assert_eq!(p.partition(&g, &[NodeId(2)]), 1);
        assert_eq!(p.color_of(NodeId(2)), 0);
    }

    #[test]
    fn duplicates_keep_first_color() {
        let g = generators::path(3);
        let mut p = ConflictPartitioner::new(g.node_count());
        let k = p.partition(&g, &[NodeId(0), NodeId(1), NodeId(0)]);
        assert_eq!(k, 2);
        let classes = p.classes(&[NodeId(0), NodeId(1), NodeId(0)]);
        assert!(is_conflict_free(&g, &[NodeId(0), NodeId(1)], &classes));
    }

    #[test]
    fn is_conflict_free_rejects_adjacent_pairs() {
        let g = generators::path(3);
        let bad = vec![vec![NodeId(0), NodeId(1)]];
        assert!(!is_conflict_free(&g, &[NodeId(0), NodeId(1)], &bad));
        let good = vec![vec![NodeId(0)], vec![NodeId(1)]];
        assert!(is_conflict_free(&g, &[NodeId(0), NodeId(1)], &good));
    }

    #[test]
    #[should_panic(expected = "not in the most recent partition")]
    fn color_of_unselected_panics() {
        let g = generators::path(3);
        let mut p = ConflictPartitioner::new(g.node_count());
        p.partition(&g, &[NodeId(0)]);
        let _ = p.color_of(NodeId(2));
    }
}
