//! Communication-graph substrate for the SDR reproduction.
//!
//! The paper (§2.1) models the network as a simple undirected connected
//! graph `G = (V, E)` with `n` processes, `m` edges, maximum degree `Δ`,
//! and diameter `D`. Processes access neighbors through *indirect naming*:
//! each process knows its neighbors only through local labels (here:
//! adjacency-list *ports*), and can recognise its own label in a
//! neighbor's list.
//!
//! This crate provides:
//!
//! * [`Graph`] — an immutable, validated CSR (compressed sparse row)
//!   representation of a simple undirected connected graph;
//! * [`GraphBuilder`] — incremental edge-list construction with
//!   validation (no self-loops, no parallel edges, connectivity);
//! * [`generators`] — the standard topology families used by the
//!   experiment harness (rings, paths, stars, trees, grids, tori,
//!   hypercubes, random connected graphs, …);
//! * [`metrics`] — exact graph metrics (diameter, eccentricities,
//!   degree statistics) computed by BFS;
//! * [`coloring`] — greedy coloring and the neighborhood-conflict
//!   partition the parallel step pipeline in `ssr-runtime` builds on,
//!   plus the word-packed [`Bitset`] used for per-node flags at scale.
//!
//! # Examples
//!
//! ```
//! use ssr_graph::{generators, NodeId};
//!
//! let g = generators::ring(5);
//! assert_eq!(g.node_count(), 5);
//! assert_eq!(g.edge_count(), 5);
//! assert_eq!(g.degree(NodeId(0)), 2);
//! assert_eq!(ssr_graph::metrics::diameter(&g), 2);
//! ```

#![forbid(unsafe_code)]

mod bitset;
mod builder;
pub mod coloring;
pub mod generators;
mod graph;
pub mod metrics;

pub use bitset::Bitset;
pub use builder::{GraphBuilder, GraphError};
pub use graph::{Graph, NodeId};
