//! Exact graph metrics: BFS distances, eccentricities, diameter.
//!
//! The paper's bounds are stated in terms of `n`, `m`, `Δ` (available on
//! [`Graph`] directly) and the diameter `D` computed here.

use crate::{Graph, NodeId};

/// Single-source BFS distances from `src` (in hops).
///
/// Every node is reachable because [`Graph`] is connected by construction.
///
/// # Examples
///
/// ```
/// use ssr_graph::{generators, metrics, NodeId};
/// let g = generators::path(4);
/// assert_eq!(metrics::bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    debug_assert!(
        dist.iter().all(|&d| d != u32::MAX),
        "graph must be connected"
    );
    dist
}

/// Eccentricity of `u`: its maximum BFS distance to any node.
pub fn eccentricity(g: &Graph, u: NodeId) -> u32 {
    bfs_distances(g, u).into_iter().max().unwrap_or(0)
}

/// Diameter `D`: the maximum eccentricity, via all-pairs BFS (`O(n·m)`).
///
/// # Examples
///
/// ```
/// use ssr_graph::{generators, metrics};
/// assert_eq!(metrics::diameter(&generators::ring(8)), 4);
/// assert_eq!(metrics::diameter(&generators::complete(8)), 1);
/// ```
pub fn diameter(g: &Graph) -> u32 {
    g.nodes().map(|u| eccentricity(g, u)).max().unwrap_or(0)
}

/// Radius: the minimum eccentricity.
pub fn radius(g: &Graph) -> u32 {
    g.nodes().map(|u| eccentricity(g, u)).min().unwrap_or(0)
}

/// Average degree `2m / n`.
pub fn average_degree(g: &Graph) -> f64 {
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// Summary of the quantities appearing in the paper's bounds.
///
/// # Examples
///
/// ```
/// use ssr_graph::{generators, metrics::GraphProfile};
/// let p = GraphProfile::of(&generators::ring(10));
/// assert_eq!((p.n, p.m, p.max_degree, p.diameter), (10, 10, 2, 5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphProfile {
    /// Number of processes `n`.
    pub n: usize,
    /// Number of edges `m`.
    pub m: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Diameter `D`.
    pub diameter: u32,
}

impl GraphProfile {
    /// Computes the profile of `g` (runs all-pairs BFS).
    pub fn of(g: &Graph) -> Self {
        GraphProfile {
            n: g.node_count(),
            m: g.edge_count(),
            max_degree: g.max_degree(),
            diameter: diameter(g),
        }
    }
}

/// Renders the graph in Graphviz DOT format (for debugging and docs).
///
/// # Examples
///
/// ```
/// use ssr_graph::{generators, metrics};
/// let dot = metrics::to_dot(&generators::path(3), "p3");
/// assert!(dot.contains("graph p3 {"));
/// assert!(dot.contains("  0 -- 1;"));
/// ```
pub fn to_dot(g: &Graph, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for u in g.nodes() {
        let _ = writeln!(out, "  {u};");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// Histogram of node degrees: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_export_contains_all_edges() {
        let g = generators::ring(4);
        let dot = to_dot(&g, "c4");
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.starts_with("graph c4 {"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn degree_histogram_counts() {
        let g = generators::star(5);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4); // leaves
        assert_eq!(hist[4], 1); // hub
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn bfs_on_star() {
        let g = generators::star(5);
        assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 1, 1, 1]);
        assert_eq!(bfs_distances(&g, NodeId(1)), vec![1, 0, 2, 2, 2]);
    }

    #[test]
    fn eccentricity_path_ends() {
        let g = generators::path(5);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn radius_vs_diameter() {
        let g = generators::path(5);
        assert_eq!(radius(&g), 2);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn single_node_metrics() {
        let g = crate::GraphBuilder::new(1).build().unwrap();
        assert_eq!(diameter(&g), 0);
        assert_eq!(radius(&g), 0);
        assert_eq!(average_degree(&g), 0.0);
    }

    #[test]
    fn average_degree_ring() {
        let g = generators::ring(10);
        assert!((average_degree(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn profile_matches_parts() {
        let g = generators::grid(3, 3);
        let p = GraphProfile::of(&g);
        assert_eq!(p.n, 9);
        assert_eq!(p.m, 12);
        assert_eq!(p.max_degree, 4);
        assert_eq!(p.diameter, 4);
    }
}
