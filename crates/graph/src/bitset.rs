//! A plain fixed-size bitset over `u64` words.
//!
//! The step pipeline in `ssr-runtime` keeps several per-node boolean
//! facts (round front membership, enabledness) for graphs up to
//! millions of nodes; `Vec<bool>` spends a byte per node and defeats
//! word-at-a-time clearing. This bitset is the struct-of-arrays
//! counterpart: one bit per node, `len/64` words, `O(n/64)` bulk
//! clear.

/// A fixed-capacity set of `usize` keys in `0..len`, one bit each.
///
/// # Examples
///
/// ```
/// use ssr_graph::Bitset;
///
/// let mut b = Bitset::new(100);
/// b.insert(3);
/// b.insert(64);
/// assert!(b.contains(3) && b.contains(64) && !b.contains(4));
/// assert_eq!(b.count(), 2);
/// assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 64]);
/// b.clear();
/// assert_eq!(b.count(), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An empty set over the key range `0..len`.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The key-range size this set was created with (not the number of
    /// set bits — see [`Bitset::count`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the key range is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Removes every key (`O(len/64)`).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// The backing words (for memory accounting and bulk scans).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut b = Bitset::new(130);
        for i in [0, 63, 64, 65, 129] {
            assert!(!b.contains(i));
            b.insert(i);
            assert!(b.contains(i));
        }
        assert_eq!(b.count(), 5);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count(), 4);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 63, 65, 129]);
    }

    #[test]
    fn clear_resets_all_words() {
        let mut b = Bitset::new(200);
        for i in 0..200 {
            b.insert(i);
        }
        assert_eq!(b.count(), 200);
        b.clear();
        assert_eq!(b.count(), 0);
        assert!(b.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn len_is_capacity_not_cardinality() {
        let b = Bitset::new(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.count(), 0);
        assert!(!b.is_empty());
        assert!(Bitset::new(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = Bitset::new(64);
        let _ = b.contains(64);
    }
}
