//! # ssr-serve — the long-running campaign service
//!
//! A std-only HTTP/1.1 server that accepts campaign specs as JSON,
//! runs them through the cached batch engine, and streams progress
//! live. Three properties carry the design:
//!
//! 1. **Content-addressed results** — every [`Scenario`] has a
//!    canonical 128-bit [fingerprint](ssr_campaign::Scenario::fingerprint)
//!    over exactly the fields that determine its record (topology ×
//!    size × algorithm × daemon × init plan × seed × step cap; *not*
//!    grid position or thread count). The shared [`RecordCache`] keys
//!    on it, so re-submitting a spec — or any spec overlapping a
//!    previous sweep — serves hits without touching the simulator, and
//!    the returned artifacts are **byte-identical** to the cold run
//!    (pinned by `tests/` here and in `ssr-campaign`).
//!
//! 2. **Resumable checkpoints** — when started with a journal path,
//!    every fresh record is appended to an `ssr-checkpoint/v1` JSONL
//!    file as it completes; on boot the journal is replayed into the
//!    cache. Kill the process mid-sweep, restart, re-submit: the sweep
//!    resumes where the journal ends, and the final artifacts equal an
//!    uninterrupted run's bytes.
//!
//! 3. **Live streaming** — the engine reports through a
//!    [`ProgressBus`](ssr_obs::progress::ProgressBus), and
//!    `GET /campaigns/<job>/events` replays the bus as a chunked
//!    `text/event-stream`; finished campaigns are served as JSONL,
//!    CSV, a metrics snapshot, and the self-contained `ssr-report`
//!    HTML.
//!
//! No external dependencies, no `unsafe`: [`std::net::TcpListener`],
//! scoped threads, and the workspace's own hand-rolled JSON. See
//! `DESIGN.md` §13 for the HTTP surface and the cache-consistency
//! argument, and `ssr-bench`'s `serve` binary for the CLI entry point.
//!
//! [`Scenario`]: ssr_campaign::Scenario
//! [`RecordCache`]: ssr_campaign::RecordCache
//!
//! # Quickstart
//!
//! ```no_run
//! use ssr_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap(); // blocks until POST /shutdown drains
//! ```

#![forbid(unsafe_code)]

pub mod http;
pub mod jobs;
pub mod orchestrator;
pub mod server;
pub mod spec;

pub use jobs::{Job, JobBoard, JobPhase};
pub use orchestrator::Store;
pub use server::{Server, ServerConfig};
