//! The job board: every submitted campaign, queued → running → done,
//! with its live event bus and memoized artifacts.
//!
//! A [`Job`] is shared between the HTTP handlers (status, SSE,
//! downloads) and the orchestrator thread (execution), so its mutable
//! half sits behind one mutex. Artifacts (JSONL, CSV, the rendered
//! HTML report) are produced once and stored as strings — serving them
//! twice yields byte-identical responses by construction.

use std::sync::{Arc, Mutex};

use ssr_campaign::output::Json;
use ssr_campaign::Campaign;
use ssr_obs::progress::ProgressBus;

/// Where a job is in its life cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting for the orchestrator.
    Queued,
    /// The engine is draining the grid.
    Running,
    /// Finished; artifacts are available.
    Done,
    /// The engine panicked (message retained).
    Failed(String),
}

impl JobPhase {
    fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed(_) => "failed",
        }
    }
}

/// The mutable half of a job, written by the orchestrator.
#[derive(Default)]
pub struct JobOutcome {
    /// Current phase (`Queued` at rest thanks to `Default`).
    phase: Option<JobPhase>,
    /// Records as JSONL, once done.
    pub jsonl: Option<String>,
    /// Records as CSV, once done.
    pub csv: Option<String>,
    /// Rendered HTML report (memoized on first request).
    pub report: Option<String>,
    /// Merged metrics snapshot as `ssr-metrics-v1` JSON, once done.
    pub metrics_json: Option<String>,
    /// Scenarios served from the content-addressed store.
    pub cache_hits: u64,
    /// Scenarios that actually ran the simulator.
    pub cache_misses: u64,
    /// Simulator steps executed (zero on an all-hit rerun).
    pub sim_steps: u64,
    /// Records with a non-ok verdict.
    pub failed: u64,
}

/// One submitted campaign.
pub struct Job {
    /// Server-assigned id, also the URL path segment: `<seq>-<spec id>`.
    pub id: String,
    /// The grid to run.
    pub campaign: Campaign,
    /// Live progress events; handlers clone it and read, the engine
    /// writes through the [`ssr_obs::progress::Progress`] impl.
    pub bus: ProgressBus,
    outcome: Mutex<JobOutcome>,
}

impl Job {
    fn new(id: String, campaign: Campaign) -> Arc<Job> {
        Arc::new(Job {
            id,
            campaign,
            bus: ProgressBus::new(),
            outcome: Mutex::new(JobOutcome::default()),
        })
    }

    /// The current phase.
    pub fn phase(&self) -> JobPhase {
        self.outcome
            .lock()
            .unwrap()
            .phase
            .clone()
            .unwrap_or(JobPhase::Queued)
    }

    /// Moves the job to `phase`.
    pub fn set_phase(&self, phase: JobPhase) {
        self.outcome.lock().unwrap().phase = Some(phase);
    }

    /// Runs `f` over the locked outcome (read or write).
    pub fn with_outcome<T>(&self, f: impl FnOnce(&mut JobOutcome) -> T) -> T {
        f(&mut self.outcome.lock().unwrap())
    }

    /// The status document served at `GET /campaigns/<id>`.
    pub fn status_json(&self) -> String {
        let snap = self.bus.snapshot();
        let out = self.outcome.lock().unwrap();
        let phase = out.phase.clone().unwrap_or(JobPhase::Queued);
        let mut doc = Json::obj([
            ("job", Json::str(&self.id)),
            ("campaign", Json::str(self.campaign.id())),
            ("phase", Json::str(phase.label())),
            ("scenarios", Json::U64(self.campaign.len() as u64)),
            ("done", Json::U64(snap.done as u64)),
            ("failed", Json::U64(out.failed)),
            ("cache_hits", Json::U64(out.cache_hits)),
            ("cache_misses", Json::U64(out.cache_misses)),
            ("sim_steps", Json::U64(out.sim_steps)),
        ]);
        if let (Json::Obj(members), JobPhase::Failed(msg)) = (&mut doc, &phase) {
            members.push(("error".to_string(), Json::Str(escape_to_plain(msg))));
        }
        doc.to_string()
    }
}

/// `Json::Str` escapes on render; this only flattens newlines so the
/// status document stays one line per job in listings.
fn escape_to_plain(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// The registry of all jobs, in submission order.
#[derive(Default)]
pub struct JobBoard {
    jobs: Mutex<Vec<Arc<Job>>>,
}

impl JobBoard {
    /// An empty board.
    pub fn new() -> JobBoard {
        JobBoard::default()
    }

    /// Registers a new job for `campaign` under a fresh sequential id
    /// (`0001-<spec id>`, `0002-…`) and returns it.
    pub fn submit(&self, spec_id: &str, campaign: Campaign) -> Arc<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        let id = format!("{:04}-{spec_id}", jobs.len() + 1);
        let job = Job::new(id, campaign);
        jobs.push(job.clone());
        job
    }

    /// Looks a job up by its full id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// All jobs, in submission order.
    pub fn all(&self) -> Vec<Arc<Job>> {
        self.jobs.lock().unwrap().clone()
    }

    /// The listing document served at `GET /campaigns`.
    pub fn listing_json(&self) -> String {
        let jobs = self.all();
        let mut s = String::from("{\"jobs\":[");
        for (i, job) in jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&job.status_json());
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board_with_two() -> (JobBoard, Arc<Job>, Arc<Job>) {
        let board = JobBoard::new();
        let a = board.submit("alpha", Campaign::new("alpha"));
        let b = board.submit("beta", Campaign::new("beta"));
        (board, a, b)
    }

    #[test]
    fn ids_are_sequential_and_resolvable() {
        let (board, a, b) = board_with_two();
        assert_eq!(a.id, "0001-alpha");
        assert_eq!(b.id, "0002-beta");
        assert!(Arc::ptr_eq(&board.get("0001-alpha").unwrap(), &a));
        assert!(board.get("0003-gamma").is_none());
    }

    #[test]
    fn status_reflects_phase_and_counters() {
        let (_, a, _) = board_with_two();
        assert_eq!(a.phase(), JobPhase::Queued);
        assert!(a.status_json().contains("\"phase\":\"queued\""));
        a.set_phase(JobPhase::Running);
        a.with_outcome(|o| {
            o.cache_hits = 3;
            o.sim_steps = 17;
        });
        let s = a.status_json();
        assert!(s.contains("\"phase\":\"running\""), "{s}");
        assert!(s.contains("\"cache_hits\":3"), "{s}");
        assert!(s.contains("\"sim_steps\":17"), "{s}");
        a.set_phase(JobPhase::Failed("boom\nline2".to_string()));
        let s = a.status_json();
        assert!(
            s.contains("\"phase\":\"failed\"") && s.contains("boom line2"),
            "{s}"
        );
    }

    #[test]
    fn listing_concatenates_all_jobs() {
        let (board, _, _) = board_with_two();
        let listing = board.listing_json();
        assert!(listing.starts_with("{\"jobs\":["));
        assert!(listing.contains("0001-alpha") && listing.contains("0002-beta"));
    }
}
