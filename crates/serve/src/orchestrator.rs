//! The single-lane orchestrator: jobs run FIFO, one at a time, through
//! the cached campaign engine against one shared content-addressed
//! store.
//!
//! One lane is a feature, not a limitation: the engine already
//! parallelizes *within* a campaign (worker threads over the grid), so
//! a second lane would only interleave two sweeps' cache misses. FIFO
//! also gives the resumability story a simple shape — the checkpoint
//! journal is an append-only merge of completed scenarios in the order
//! they finished, whatever job they belonged to.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use ssr_campaign::{engine, output, CacheLayer, CampaignObs, CheckpointWriter, RecordCache};
use ssr_obs::progress::Progress;

use crate::jobs::{Job, JobPhase};

/// The store shared by every job: the in-memory record cache plus the
/// optional on-disk checkpoint journal backing it.
pub struct Store {
    /// Fingerprint → record; hits skip the simulator.
    pub cache: Arc<RecordCache>,
    /// The journal, when the server was started with one.
    pub checkpoint: Option<CheckpointWriter>,
    /// Entries replayed from the journal at boot.
    pub replayed: usize,
}

impl Store {
    /// An empty in-memory store (no journal).
    pub fn in_memory() -> Store {
        Store {
            cache: Arc::new(RecordCache::new()),
            checkpoint: None,
            replayed: 0,
        }
    }

    /// Opens (or creates) the journal at `path`, replaying any
    /// existing entries into the cache first. A torn final line — the
    /// signature of a killed process — is dropped on replay and healed
    /// by the writer, so resuming after a crash is the normal path,
    /// not an error.
    pub fn with_checkpoint(path: PathBuf) -> Result<Store, String> {
        let cache = Arc::new(RecordCache::new());
        let replayed = ssr_campaign::checkpoint::replay_into(&path, &cache)?;
        let writer = CheckpointWriter::open(&path)
            .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
        Ok(Store {
            cache,
            checkpoint: Some(writer),
            replayed,
        })
    }
}

/// Runs one job to completion against the store, updating its phase,
/// artifacts, and counters. Called from the orchestrator loop and from
/// tests that want synchronous execution.
pub fn run_job(job: &Job, store: &Store, threads: usize) {
    job.set_phase(JobPhase::Running);
    let layer = CacheLayer {
        cache: &store.cache,
        checkpoint: store.checkpoint.as_ref(),
    };
    let campaign = job.campaign.clone();
    let bus = job.bus.clone();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut obs = CampaignObs::new()
            .with_metrics()
            .with_progress(Box::new(bus));
        let records = engine::run_obs_cached(&campaign, threads, &mut obs, layer);
        let metrics = obs.take_metrics().expect("metrics channel was enabled");
        (records, metrics)
    }));
    match result {
        Ok((records, metrics)) => {
            let counter = |key: &str| metrics.counter_value(key).unwrap_or(0);
            job.with_outcome(|out| {
                out.cache_hits = counter("campaign.cache_hits");
                out.cache_misses = counter("campaign.cache_misses");
                out.sim_steps = counter("pipeline.steps");
                out.failed = counter("campaign.failed");
                out.jsonl = Some(output::jsonl(&records));
                out.csv = Some(output::csv(&records));
                out.metrics_json = Some(metrics.snapshot().to_json());
            });
            job.set_phase(JobPhase::Done);
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "campaign engine panicked".to_string());
            job.set_phase(JobPhase::Failed(msg));
            // The engine never reached `finish`; release any readers
            // blocked on the bus.
            job.bus.clone().finish();
        }
    }
}

/// The orchestrator loop: drains the queue until every sender is
/// dropped, then returns. Dropping the last [`Sender`] is therefore
/// the graceful-shutdown signal — queued jobs still run (drain
/// semantics), new ones can no longer be enqueued.
pub fn run_loop(rx: Receiver<Arc<Job>>, store: &Store, threads: usize) {
    for job in rx {
        run_job(&job, store, threads);
    }
}

/// Convenience: a queue pair typed for the orchestrator.
pub fn queue() -> (Sender<Arc<Job>>, Receiver<Arc<Job>>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobBoard;
    use ssr_campaign::{Campaign, TopologySpec};
    use ssr_runtime::Daemon;

    fn tiny(id: &str) -> Campaign {
        Campaign::new(id)
            .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
            .sizes(vec![6])
            .algorithms(vec![ssr_campaign::families::unison_sdr()])
            .daemons(vec![Daemon::Central])
            .trials(2)
            .step_cap(500_000)
    }

    #[test]
    fn rerunning_the_same_spec_is_all_hits_and_byte_identical() {
        let board = JobBoard::new();
        let store = Store::in_memory();
        let first = board.submit("t", tiny("t"));
        let second = board.submit("t", tiny("t"));
        run_job(&first, &store, 2);
        run_job(&second, &store, 2);
        assert_eq!(first.phase(), JobPhase::Done);
        assert_eq!(second.phase(), JobPhase::Done);
        let (jsonl1, hits1, steps1) =
            first.with_outcome(|o| (o.jsonl.clone().unwrap(), o.cache_hits, o.sim_steps));
        let (jsonl2, hits2, steps2) =
            second.with_outcome(|o| (o.jsonl.clone().unwrap(), o.cache_hits, o.sim_steps));
        assert_eq!(hits1, 0, "cold run misses everything");
        assert!(steps1 > 0, "cold run actually simulates");
        assert_eq!(
            hits2,
            first.campaign.len() as u64,
            "warm run hits everything"
        );
        assert_eq!(steps2, 0, "warm run never touches the simulator");
        assert_eq!(jsonl1, jsonl2, "artifacts are byte-identical");
    }

    #[test]
    fn the_loop_drains_and_exits_when_senders_drop() {
        let board = JobBoard::new();
        let store = Store::in_memory();
        let (tx, rx) = queue();
        let job = board.submit("drain", tiny("drain"));
        tx.send(job.clone()).unwrap();
        drop(tx);
        run_loop(rx, &store, 2);
        assert_eq!(job.phase(), JobPhase::Done);
        assert!(job.bus.snapshot().finished);
    }

    #[test]
    fn a_rebooted_store_replays_the_journal_into_the_cache() {
        let dir = std::env::temp_dir().join(format!("ssr-serve-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        // First server life: cold sweep, journaled.
        let store = Store::with_checkpoint(path.clone()).unwrap();
        assert_eq!(store.replayed, 0);
        let board = JobBoard::new();
        let cold = board.submit("t", tiny("t"));
        run_job(&cold, &store, 2);
        let cold_jsonl = cold.with_outcome(|o| o.jsonl.clone().unwrap());
        drop(store);

        // Second life: boot replays, the same sweep is all hits.
        let store = Store::with_checkpoint(path.clone()).unwrap();
        assert_eq!(store.replayed, cold.campaign.len());
        let warm = board.submit("t", tiny("t"));
        run_job(&warm, &store, 2);
        let (warm_jsonl, hits, steps) =
            warm.with_outcome(|o| (o.jsonl.clone().unwrap(), o.cache_hits, o.sim_steps));
        assert_eq!(hits, warm.campaign.len() as u64);
        assert_eq!(steps, 0);
        assert_eq!(warm_jsonl, cold_jsonl);
        let _ = std::fs::remove_file(&path);
    }
}
