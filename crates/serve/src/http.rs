//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`]: request
//! parsing, plain responses, and chunked `text/event-stream` writing.
//!
//! Only what the campaign service needs — method + path + body in,
//! status + content-type + body out — with hard limits on header and
//! body size so a misbehaving client cannot balloon memory. Keep-alive
//! is deliberately not implemented: every response closes the
//! connection, which makes draining trivial to reason about.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (campaign specs are small).
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request: enough routing surface for the service.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component only (query strings are not supported).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads and parses one request from `stream`.
///
/// Returns `Err` on malformed syntax, oversized head/body, or a closed
/// socket; the caller answers with 400 where a response is still
/// possible.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line.
    read_line_limited(&mut reader, &mut head)?;
    let mut parts = head.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| "request line missing path".to_string())?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    let mut total = head.len();
    loop {
        let mut line = String::new();
        read_line_limited(&mut reader, &mut line)?;
        total += line.len();
        if total > MAX_HEAD {
            return Err("request head too large".to_string());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request { method, path, body })
}

fn read_line_limited(
    reader: &mut BufReader<&mut TcpStream>,
    out: &mut String,
) -> Result<(), String> {
    let n = reader
        .read_line(out)
        .map_err(|e| format!("cannot read request: {e}"))?;
    if n == 0 {
        return Err("connection closed mid-request".to_string());
    }
    if out.len() > MAX_HEAD {
        return Err("request line too large".to_string());
    }
    Ok(())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response and flushes; errors are swallowed (the
/// client may already be gone, which is its prerogative).
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// [`respond`] with `application/json` and a trailing newline.
pub fn respond_json(stream: &mut TcpStream, status: u16, json: &str) {
    let mut body = json.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    respond(stream, status, "application/json", body.as_bytes());
}

/// [`respond`] with a plain-text message (newline-terminated).
pub fn respond_text(stream: &mut TcpStream, status: u16, msg: &str) {
    let mut body = msg.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    respond(stream, status, "text/plain; charset=utf-8", body.as_bytes());
}

/// A chunked `text/event-stream` writer: call [`SseWriter::event`] per
/// payload line, then [`SseWriter::finish`]. Any transport error turns
/// the writer inert — callers just notice [`SseWriter::is_dead`] and
/// stop producing.
pub struct SseWriter<'s> {
    stream: &'s mut TcpStream,
    dead: bool,
}

impl<'s> SseWriter<'s> {
    /// Sends the response head and returns the writer.
    pub fn begin(stream: &'s mut TcpStream) -> SseWriter<'s> {
        let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
        let mut w = SseWriter {
            stream,
            dead: false,
        };
        w.raw(head.as_bytes());
        w
    }

    fn raw(&mut self, bytes: &[u8]) {
        if self.dead {
            return;
        }
        if self
            .stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .is_err()
        {
            self.dead = true;
        }
    }

    /// Sends one SSE event (`data: <payload>\n\n`) as one chunk.
    pub fn event(&mut self, payload: &str) {
        let data = format!("data: {payload}\n\n");
        let chunk = format!("{:x}\r\n{data}\r\n", data.len());
        self.raw(chunk.as_bytes());
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(&mut self) {
        self.raw(b"0\r\n\r\n");
    }

    /// Whether the client went away (writes have started failing).
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            // Keep the socket open until the server has parsed.
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(client.join().unwrap());
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            round_trip("POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nspec")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.body, b"spec");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = round_trip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_non_http_and_bad_lengths() {
        assert!(round_trip("NONSENSE\r\n\r\n").is_err());
        assert!(round_trip("GET / SPDY/9\r\n\r\n").is_err());
        assert!(round_trip("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n").is_err());
    }
}
