//! Campaign-spec deserialization: JSON in, [`Campaign`] out.
//!
//! The wire format (`ssr-campaign-spec/v1`) is a JSON object whose
//! axis values are the exact label strings the records carry —
//! [`TopologySpec::label`], [`ssr_runtime::Daemon::label`],
//! [`ssr_runtime::family::InitPlan::label`], and algorithm-spec
//! strings — so a spec round-trips through what the reports already
//! display. Every axis is optional and defaults to the [`Campaign`]
//! defaults; unknown keys are hard errors (a typoed axis silently
//! sweeping the default would be worse).
//!
//! ```json
//! {"schema":"ssr-campaign-spec/v1","id":"smoke",
//!  "topologies":["ring","star"],"sizes":[6,8],
//!  "algorithms":["unison-sdr"],"daemons":["central"],
//!  "inits":["arbitrary"],"trials":2,"step_cap":500000,"seed":7}
//! ```

use ssr_campaign::{AlgorithmSpec, Campaign, InitPlan, TopologySpec};
use ssr_obs::json::{self, Value};
use ssr_runtime::Daemon;

/// Schema tag every spec must carry.
pub const SCHEMA: &str = "ssr-campaign-spec/v1";

/// Keys the v1 schema understands.
const KNOWN_KEYS: [&str; 11] = [
    "schema",
    "id",
    "topologies",
    "sizes",
    "algorithms",
    "daemons",
    "inits",
    "trials",
    "step_cap",
    "seed",
    "intra_threads",
];

/// Parses `text` as a `ssr-campaign-spec/v1` document.
///
/// Returns the campaign id and the fully-built grid. The id is
/// restricted to `[A-Za-z0-9._-]` because it becomes a URL path
/// segment.
pub fn parse(text: &str) -> Result<(String, Campaign), String> {
    let root = json::parse(text)?;
    let members = json::obj(&root, "spec")?;
    for (key, _) in members {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(format!("spec: unknown key {key:?}"));
        }
    }
    let schema = json::str_field(&root, "schema", "spec")?;
    if schema != SCHEMA {
        return Err(format!("spec: schema {schema:?}, expected {SCHEMA:?}"));
    }
    let id = json::str_field(&root, "id", "spec")?;
    if id.is_empty() || id.len() > 128 {
        return Err("spec: id must be 1..=128 characters".to_string());
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(format!(
            "spec: id {id:?} has characters outside [A-Za-z0-9._-]"
        ));
    }

    let mut campaign = Campaign::new(id.clone());
    if let Some(v) = members
        .iter()
        .find(|(k, _)| k == "topologies")
        .map(|(_, v)| v)
    {
        campaign = campaign.topologies(parse_axis(v, "topologies", |s| {
            TopologySpec::parse_label(s).ok_or_else(|| format!("unknown topology {s:?}"))
        })?);
    }
    if let Some(v) = lookup(members, "sizes") {
        campaign = campaign.sizes(parse_usizes(v, "sizes")?);
    }
    if let Some(v) = lookup(members, "algorithms") {
        campaign = campaign.algorithms(parse_axis(v, "algorithms", |s| {
            s.parse::<AlgorithmSpec>().map_err(|e| format!("{e:?}"))
        })?);
    }
    if let Some(v) = lookup(members, "daemons") {
        campaign = campaign.daemons(parse_axis(v, "daemons", |s| {
            Daemon::parse_label(s).ok_or_else(|| format!("unknown daemon {s:?}"))
        })?);
    }
    if let Some(v) = lookup(members, "inits") {
        campaign = campaign.inits(parse_axis(v, "inits", |s| {
            InitPlan::parse_label(s).ok_or_else(|| format!("unknown init plan {s:?}"))
        })?);
    }
    if let Some(v) = lookup(members, "trials") {
        let trials = v
            .as_u64()
            .ok_or("spec: trials must be an unsigned integer")?;
        if trials == 0 {
            return Err("spec: trials must be >= 1".to_string());
        }
        campaign = campaign.trials(trials);
    }
    if let Some(v) = lookup(members, "step_cap") {
        campaign = campaign.step_cap(
            v.as_u64()
                .ok_or("spec: step_cap must be an unsigned integer")?,
        );
    }
    if let Some(v) = lookup(members, "seed") {
        campaign = campaign.seed(v.as_u64().ok_or("spec: seed must be an unsigned integer")?);
    }
    if let Some(v) = lookup(members, "intra_threads") {
        campaign = campaign.intra_threads(parse_usizes(v, "intra_threads")?);
    }
    Ok((id, campaign))
}

fn lookup<'v>(members: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse_axis<T>(
    v: &Value,
    what: &str,
    mut one: impl FnMut(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items = json::arr(v, what)?;
    if items.is_empty() {
        return Err(format!("spec: {what} must be non-empty"));
    }
    items
        .iter()
        .map(|item| {
            let s = item
                .as_str()
                .ok_or_else(|| format!("spec: {what} entries must be strings"))?;
            one(s).map_err(|e| format!("spec: {what}: {e}"))
        })
        .collect()
}

fn parse_usizes(v: &Value, what: &str) -> Result<Vec<usize>, String> {
    let items = json::arr(v, what)?;
    if items.is_empty() {
        return Err(format!("spec: {what} must be non-empty"));
    }
    items
        .iter()
        .map(|item| {
            item.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| format!("spec: {what} entries must be unsigned integers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{"schema":"ssr-campaign-spec/v1","id":"full",
        "topologies":["ring","gnp(250e-3)"],"sizes":[6,8],
        "algorithms":["unison-sdr","cfg-unison"],
        "daemons":["central","sync","subset(p=0.25)"],
        "inits":["arbitrary","tear(n/2)"],
        "trials":2,"step_cap":500000,"seed":7,"intra_threads":[1,2]}"#;

    #[test]
    fn full_spec_builds_the_whole_grid() {
        let (id, c) = parse(FULL).unwrap();
        assert_eq!(id, "full");
        assert_eq!(c.id(), "full");
        assert_eq!(c.len(), 2 * 2 * 2 * 3 * 2 * 2 * 2);
        // Axis labels survive the round trip into scenarios.
        let labels: Vec<String> = c.scenarios().map(|sc| sc.topology.label()).collect();
        assert!(labels.iter().any(|l| l == "gnp(250e-3)"));
    }

    #[test]
    fn minimal_spec_uses_campaign_defaults() {
        let (id, c) = parse(r#"{"schema":"ssr-campaign-spec/v1","id":"mini"}"#).unwrap();
        assert_eq!(id, "mini");
        assert_eq!(c.len(), 1);
        let sc = c.scenario(0);
        assert_eq!(sc.topology, TopologySpec::Ring);
        assert_eq!(sc.n, 8);
    }

    #[test]
    fn spec_errors_are_specific() {
        for (text, needle) in [
            (r#"{"id":"x"}"#, "schema"),
            (r#"{"schema":"ssr-campaign-spec/v2","id":"x"}"#, "schema"),
            (r#"{"schema":"ssr-campaign-spec/v1","id":""}"#, "1..=128"),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"a/b"}"#,
                "A-Za-z0-9",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","typo":1}"#,
                "unknown key",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","topologies":[]}"#,
                "non-empty",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","topologies":["blob"]}"#,
                "unknown topology",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","daemons":["maybe"]}"#,
                "unknown daemon",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","inits":["soup"]}"#,
                "unknown init",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","trials":0}"#,
                ">= 1",
            ),
            (
                r#"{"schema":"ssr-campaign-spec/v1","id":"x","sizes":["eight"]}"#,
                "unsigned",
            ),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn spec_ids_in_urls_stay_urls() {
        let ok = r#"{"schema":"ssr-campaign-spec/v1","id":"A-1._ok"}"#;
        assert!(parse(ok).is_ok());
    }
}
