//! The HTTP front: routing, SSE streaming, and graceful drain.
//!
//! One thread accepts connections and hands each to a scoped handler
//! thread; a separate orchestrator thread runs campaigns FIFO (see
//! [`crate::orchestrator`]). `POST /shutdown` flips the draining flag,
//! answers, and self-connects to unblock the accept loop; the queue
//! sender is then dropped, the orchestrator finishes every queued job,
//! and [`Server::run`] returns. Nothing submitted is ever abandoned.
//!
//! # Routes
//!
//! | method & path | response |
//! |---|---|
//! | `GET /healthz` | `200 ok` |
//! | `POST /campaigns` | spec JSON in, `201` + status JSON (or `400`/`503` when draining) |
//! | `GET /campaigns` | listing of every job's status |
//! | `GET /campaigns/<job>` | one job's status JSON |
//! | `GET /campaigns/<job>/events` | live `text/event-stream` of progress lines |
//! | `GET /campaigns/<job>/records.jsonl` | the records, JSONL (`409` until done) |
//! | `GET /campaigns/<job>/records.csv` | the records, CSV (`409` until done) |
//! | `GET /campaigns/<job>/metrics` | merged `ssr-metrics-v1` snapshot (`409` until done) |
//! | `GET /campaigns/<job>/report` | self-contained `ssr-report` HTML (`409` until done) |
//! | `POST /shutdown` | `200`, then drain and exit |

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ssr_report::Artifacts;

use crate::http::{self, Request, SseWriter};
use crate::jobs::{Job, JobBoard, JobPhase};
use crate::orchestrator::{self, Store};
use crate::spec;

/// How the server is wired up.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Engine worker threads per campaign.
    pub threads: usize,
    /// Checkpoint journal path; `None` keeps the store in memory only.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            checkpoint: None,
        }
    }
}

struct Shared {
    board: JobBoard,
    store: Store,
    threads: usize,
    draining: AtomicBool,
    queue: Mutex<Option<Sender<Arc<Job>>>>,
}

/// A bound campaign service. [`Server::bind`] claims the port (so the
/// caller can learn an ephemeral address before any request exists);
/// [`Server::run`] blocks until a `POST /shutdown` finishes draining.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens (replaying) the checkpoint store.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let store = match config.checkpoint {
            Some(path) => Store::with_checkpoint(path)?,
            None => Store::in_memory(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                board: JobBoard::new(),
                store,
                threads: config.threads.max(1),
                draining: AtomicBool::new(false),
                queue: Mutex::new(None),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Checkpoint entries replayed into the cache at boot.
    pub fn replayed(&self) -> usize {
        self.shared.store.replayed
    }

    /// Serves until shutdown completes. Every accepted connection is
    /// handled on a scoped thread; the orchestrator drains the queue
    /// after the accept loop stops, so queued work always finishes.
    pub fn run(self) -> Result<(), String> {
        let (tx, rx) = orchestrator::queue();
        *self.shared.queue.lock().unwrap() = Some(tx);
        let shared = &self.shared;
        std::thread::scope(|scope| {
            let orchestrator = scope.spawn(|| {
                orchestrator::run_loop(rx, &shared.store, shared.threads);
            });
            for stream in self.listener.incoming() {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(move || handle_connection(stream, shared));
            }
            // Dropping the sender ends the orchestrator loop once the
            // queue drains.
            shared.queue.lock().unwrap().take();
            orchestrator
                .join()
                .map_err(|_| "orchestrator thread panicked".to_string())
        })
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            http::respond_text(&mut stream, 400, &e);
            return;
        }
    };
    route(&mut stream, &request, shared);
}

fn route(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::respond_text(stream, 200, "ok"),
        ("POST", "/campaigns") => submit(stream, req, shared),
        ("GET", "/campaigns") => http::respond_json(stream, 200, &shared.board.listing_json()),
        ("POST", "/shutdown") => shutdown(stream, shared),
        ("GET", path) => job_route(stream, path, shared),
        (_, _) => http::respond_text(stream, 405, "method not allowed"),
    }
}

fn submit(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    if shared.draining.load(Ordering::SeqCst) {
        http::respond_text(stream, 503, "draining: no new campaigns");
        return;
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            http::respond_text(stream, 400, "spec must be UTF-8 JSON");
            return;
        }
    };
    let (id, campaign) = match spec::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => {
            http::respond_text(stream, 400, &e);
            return;
        }
    };
    let job = shared.board.submit(&id, campaign);
    // Enqueue unless a racing shutdown already closed the queue.
    let enqueued = shared
        .queue
        .lock()
        .unwrap()
        .as_ref()
        .map(|tx| tx.send(job.clone()).is_ok())
        .unwrap_or(false);
    if !enqueued {
        job.set_phase(JobPhase::Failed("server is draining".to_string()));
        http::respond_text(stream, 503, "draining: no new campaigns");
        return;
    }
    http::respond_json(stream, 201, &job.status_json());
}

fn shutdown(stream: &mut TcpStream, shared: &Shared) {
    http::respond_text(stream, 200, "draining");
    shared.draining.store(true, Ordering::SeqCst);
    // Self-connect to pop the accept loop out of `incoming()`.
    if let Ok(addr) = stream.local_addr() {
        let _ = TcpStream::connect(addr);
    }
}

fn job_route(stream: &mut TcpStream, path: &str, shared: &Shared) {
    let Some(rest) = path.strip_prefix("/campaigns/") else {
        http::respond_text(stream, 404, "no such route");
        return;
    };
    let (job_id, endpoint) = match rest.split_once('/') {
        Some((id, ep)) => (id, ep),
        None => (rest, ""),
    };
    let Some(job) = shared.board.get(job_id) else {
        http::respond_text(stream, 404, &format!("no job {job_id:?}"));
        return;
    };
    match endpoint {
        "" => http::respond_json(stream, 200, &job.status_json()),
        "events" => stream_events(stream, &job),
        "records.jsonl" => {
            serve_artifact(stream, &job, "application/x-ndjson", |o| o.jsonl.clone())
        }
        "records.csv" => serve_artifact(stream, &job, "text/csv; charset=utf-8", |o| o.csv.clone()),
        "metrics" => serve_artifact(stream, &job, "application/json", |o| o.metrics_json.clone()),
        "report" => serve_report(stream, &job),
        _ => http::respond_text(stream, 404, &format!("no endpoint {endpoint:?}")),
    }
}

fn stream_events(stream: &mut TcpStream, job: &Job) {
    let bus = job.bus.clone();
    let mut sse = SseWriter::begin(stream);
    let mut cursor = 0usize;
    loop {
        let (events, next) = bus.events_since(cursor, Duration::from_millis(250));
        cursor = next;
        for event in &events {
            sse.event(event);
        }
        if sse.is_dead() {
            return; // client went away; nothing left to say
        }
        if events.is_empty() && bus.snapshot().finished {
            break;
        }
        // A failed job never begins nor finishes its bus; bail out
        // rather than holding the socket forever.
        if matches!(job.phase(), JobPhase::Failed(_)) && events.is_empty() {
            break;
        }
    }
    sse.finish();
}

fn serve_artifact(
    stream: &mut TcpStream,
    job: &Job,
    content_type: &str,
    pick: impl Fn(&mut crate::jobs::JobOutcome) -> Option<String>,
) {
    match job.with_outcome(pick) {
        Some(body) => http::respond(stream, 200, content_type, body.as_bytes()),
        None => http::respond_text(stream, 409, "campaign not finished"),
    }
}

/// Renders (memoizing) the HTML report for a finished job: its records
/// plus the merged metrics snapshot, through the same
/// [`ssr_report::render`] path the offline `report` binary uses — so a
/// served report is byte-identical to one rendered from downloaded
/// artifacts.
fn serve_report(stream: &mut TcpStream, job: &Job) {
    if let Some(html) = job.with_outcome(|o| o.report.clone()) {
        http::respond(stream, 200, "text/html; charset=utf-8", html.as_bytes());
        return;
    }
    let inputs = job.with_outcome(|o| o.jsonl.clone().zip(o.metrics_json.clone()));
    let Some((jsonl, metrics_json)) = inputs else {
        http::respond_text(stream, 409, "campaign not finished");
        return;
    };
    let mut art = Artifacts::default();
    let build = art
        .push_campaign_jsonl(&format!("{}.jsonl", job.id), &jsonl)
        .and_then(|()| art.push_metrics_json(&format!("{}-metrics.json", job.id), &metrics_json));
    if let Err(e) = build {
        http::respond_text(stream, 500, &format!("cannot assemble report: {e}"));
        return;
    }
    let html = ssr_report::render(&art);
    job.with_outcome(|o| o.report = Some(html.clone()));
    http::respond(stream, 200, "text/html; charset=utf-8", html.as_bytes());
}
