//! End-to-end service test: a real server on an ephemeral port, driven
//! through plain TCP — submit, stream, download, re-submit (all cache
//! hits), drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ssr_serve::{Server, ServerConfig};

const SPEC: &str = r#"{"schema":"ssr-campaign-spec/v1","id":"e2e",
    "topologies":["ring","star"],"sizes":[6],
    "algorithms":["unison-sdr"],"daemons":["central"],
    "trials":2,"step_cap":500000,"seed":11}"#;

/// One request, whole response back as (status line, headers+body text).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, raw)
}

fn body_of(raw: &str) -> &str {
    raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

/// Extracts `"key":<number>` from a status document.
fn u64_field(doc: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &doc[doc.find(&pat).unwrap_or_else(|| panic!("{key} in {doc}")) + pat.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn wait_done(addr: SocketAddr, job: &str) -> String {
    for _ in 0..600 {
        let (status, raw) = request(addr, "GET", &format!("/campaigns/{job}"), "");
        assert_eq!(status, 200);
        let body = body_of(&raw).to_string();
        if body.contains("\"phase\":\"done\"") {
            return body;
        }
        assert!(!body.contains("\"phase\":\"failed\""), "job failed: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {job} never finished");
}

#[test]
fn the_whole_surface_works_over_tcp() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        checkpoint: None,
    })
    .unwrap();
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    // Health.
    let (status, raw) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body_of(&raw).starts_with("ok"));

    // Bad spec → 400 with a specific message.
    let (status, raw) = request(addr, "POST", "/campaigns", "{\"schema\":\"nope\"}");
    assert_eq!(status, 400);
    assert!(body_of(&raw).contains("schema"));

    // Cold submission.
    let (status, raw) = request(addr, "POST", "/campaigns", SPEC);
    assert_eq!(status, 201, "{raw}");
    let job = "0001-e2e";
    assert!(body_of(&raw).contains(job));
    let cold = wait_done(addr, job);
    assert_eq!(u64_field(&cold, "scenarios"), 4);
    assert_eq!(u64_field(&cold, "done"), 4);
    assert_eq!(u64_field(&cold, "cache_hits"), 0);
    assert_eq!(u64_field(&cold, "cache_misses"), 4);
    assert!(u64_field(&cold, "sim_steps") > 0, "{cold}");

    // Artifacts before a job exists → 404; for this one → 200.
    let (status, _) = request(addr, "GET", "/campaigns/9999-x/records.jsonl", "");
    assert_eq!(status, 404);
    let (status, jsonl_raw) = request(addr, "GET", &format!("/campaigns/{job}/records.jsonl"), "");
    assert_eq!(status, 200);
    let cold_jsonl = body_of(&jsonl_raw).to_string();
    assert_eq!(cold_jsonl.lines().count(), 4);
    let (status, csv_raw) = request(addr, "GET", &format!("/campaigns/{job}/records.csv"), "");
    assert_eq!(status, 200);
    assert!(body_of(&csv_raw).starts_with("campaign,"));

    // The SSE stream replays the finished bus and terminates.
    let (status, sse) = request(addr, "GET", &format!("/campaigns/{job}/events"), "");
    assert_eq!(status, 200);
    assert!(sse.contains("text/event-stream"), "{sse}");
    assert!(
        sse.contains("data: {\"progress\":\"begin\",\"total\":4}"),
        "{sse}"
    );
    assert!(sse.contains("\"progress\":\"end\""), "{sse}");
    assert!(sse.trim_end().ends_with("0"), "chunked terminator: {sse:?}");

    // The report carries the full chart-anchor inventory.
    let (status, report) = request(addr, "GET", &format!("/campaigns/{job}/report"), "");
    assert_eq!(status, 200);
    for anchor in ["chart-bounds", "chart-convergence", "chart-scaling"] {
        assert!(
            report.contains(&format!("id=\"{anchor}\"")),
            "missing {anchor}"
        );
    }

    // Warm re-submission: all hits, zero simulator steps, identical bytes.
    let (status, _) = request(addr, "POST", "/campaigns", SPEC);
    assert_eq!(status, 201);
    let warm = wait_done(addr, "0002-e2e");
    assert_eq!(u64_field(&warm, "cache_hits"), 4);
    assert_eq!(u64_field(&warm, "cache_misses"), 0);
    assert_eq!(u64_field(&warm, "sim_steps"), 0);
    let (_, warm_jsonl_raw) = request(addr, "GET", "/campaigns/0002-e2e/records.jsonl", "");
    assert_eq!(body_of(&warm_jsonl_raw), cold_jsonl);

    // The listing shows both jobs.
    let (status, listing) = request(addr, "GET", "/campaigns", "");
    assert_eq!(status, 200);
    assert!(listing.contains("0001-e2e") && listing.contains("0002-e2e"));

    // Drain: shutdown answers, later submissions bounce, run() returns.
    let (status, raw) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body_of(&raw).starts_with("draining"));
    running
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    assert!(TcpStream::connect(addr)
        .map(|mut s| {
            // Whatever half-open connection slips in, no response comes back.
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        })
        .unwrap_or(true));
}

#[test]
fn live_streaming_delivers_events_before_the_job_finishes() {
    // A bigger grid so the stream is demonstrably live: open the SSE
    // connection first, then submit, and require that progress arrives.
    let server = Server::bind(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    let spec = r#"{"schema":"ssr-campaign-spec/v1","id":"live",
        "topologies":["ring"],"sizes":[6,8,10,12],
        "algorithms":["unison-sdr"],"daemons":["central"],
        "trials":4,"step_cap":500000,"seed":3}"#;
    let (status, _) = request(addr, "POST", "/campaigns", spec);
    assert_eq!(status, 201);
    let (status, sse) = request(addr, "GET", "/campaigns/0001-live/events", "");
    assert_eq!(status, 200);
    // 1 begin + 16 items + 1 end, every line a data: chunk.
    assert_eq!(sse.matches("data: ").count(), 18, "{sse}");
    assert!(sse.contains("\"done\":16"));

    let (_, _) = request(addr, "POST", "/shutdown", "");
    running.join().unwrap().unwrap();
}
