//! Integration tests for the self-stabilizing unison `U ∘ SDR` (§5.5):
//! Theorems 5, 6, 7 plus safety/liveness after stabilization.

use ssr_core::Standalone;
use ssr_graph::{generators, metrics, Graph};
use ssr_runtime::{Daemon, Simulator, StepOutcome};
use ssr_unison::{spec, unison_sdr, Unison};

fn clocks_of(states: &[ssr_core::Composed<u64>]) -> Vec<u64> {
    states.iter().map(|s| s.inner).collect()
}

/// Theorem 5 ingredients: from γ_init, standalone U keeps safety and
/// every clock advances (liveness probe).
#[test]
fn standalone_unison_correct_from_gamma_init() {
    let g = generators::random_connected(12, 8, 4);
    let unison = Unison::for_graph(&g);
    let k = unison.period();
    let alg = Standalone::new(unison);
    let init = alg.initial_config(&g);
    let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.6 }, 3);
    let mut monitor = spec::LivenessMonitor::new(sim.states());
    for _ in 0..5_000 {
        match sim.step() {
            StepOutcome::Terminal => panic!("Lemma 18: unison must never terminate"),
            StepOutcome::Progress { .. } => {
                assert!(
                    spec::safety_holds(&g, sim.states(), k),
                    "safety violated mid-execution"
                );
                monitor.observe(sim.states());
            }
        }
    }
    assert!(
        monitor.all_incremented_at_least(10),
        "liveness: every clock should advance many times in 5000 fair steps, min = {}",
        monitor.min_increments()
    );
}

/// Lemma 20: standalone U started from a *non-legitimate* configuration
/// has a frozen process, and then every process moves at most 3D times.
#[test]
fn standalone_unison_freezes_outside_legitimate_set() {
    let g = generators::path(6);
    let d = metrics::diameter(&g) as u64;
    let unison = Unison::for_graph(&g);
    let alg = Standalone::new(unison);
    // Clock gap of 3 between nodes 2 and 3: not locally correct.
    let init = vec![0u64, 0, 0, 3, 3, 3];
    let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.7 }, 9);
    let out = sim.execution().cap(100_000).run();
    assert!(out.terminal, "execution must be finite (Lemma 20)");
    assert!(
        sim.stats().max_moves_per_process() <= spec::lemma20_move_bound(d),
        "Lemma 20: {} > 3D = {}",
        sim.stats().max_moves_per_process(),
        spec::lemma20_move_bound(d)
    );
}

fn stabilization_run(
    g: &Graph,
    daemon: Daemon,
    config_seed: u64,
    daemon_seed: u64,
) -> (u64, u64, Vec<ssr_core::Composed<u64>>) {
    let algo = unison_sdr(Unison::for_graph(g));
    let init = algo.arbitrary_config(g, config_seed);
    let check = unison_sdr(Unison::for_graph(g));
    let mut sim = Simulator::new(g, algo, init, daemon, daemon_seed);
    let out = sim
        .execution()
        .cap(5_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached, "U ∘ SDR failed to stabilize");
    (out.rounds_at_hit, out.moves_at_hit, sim.states().to_vec())
}

/// Theorems 6 and 7 across topologies and daemons.
#[test]
fn stabilization_bounds_hold_across_topologies_and_daemons() {
    let topologies: Vec<(&str, Graph)> = vec![
        ("ring", generators::ring(10)),
        ("path", generators::path(10)),
        ("star", generators::star(10)),
        ("complete", generators::complete(8)),
        ("tree", generators::binary_tree(10)),
        ("grid", generators::grid(3, 3)),
        ("random", generators::random_connected(10, 6, 77)),
    ];
    for (label, g) in &topologies {
        let n = g.node_count() as u64;
        let d = metrics::diameter(g) as u64;
        for daemon in [
            Daemon::Synchronous,
            Daemon::Central,
            Daemon::RandomSubset { p: 0.5 },
            Daemon::PreferHighRules,
            Daemon::LexMin,
        ] {
            for seed in 0..3 {
                let (rounds, moves, _) = stabilization_run(g, daemon.clone(), seed * 13 + 1, seed);
                assert!(
                    rounds <= spec::theorem7_round_bound(n),
                    "{label}/{daemon:?}: Theorem 7 violated: {rounds} > 3n = {}",
                    spec::theorem7_round_bound(n)
                );
                assert!(
                    moves <= spec::theorem6_move_bound(n, d.max(1)),
                    "{label}/{daemon:?}: Theorem 6 violated: {moves} > bound {}",
                    spec::theorem6_move_bound(n, d.max(1))
                );
            }
        }
    }
}

/// After stabilization the full unison specification holds: safety at
/// every subsequent instant, and liveness.
#[test]
fn specification_holds_after_stabilization() {
    let g = generators::torus(3, 3);
    let k = Unison::for_graph(&g).period();
    let algo = unison_sdr(Unison::for_graph(&g));
    let init = algo.arbitrary_config(&g, 0xDEAD);
    let check = unison_sdr(Unison::for_graph(&g));
    let mut sim = Simulator::new(&g, algo, init, Daemon::RoundRobin, 4);
    let out = sim
        .execution()
        .cap(2_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached);
    let mut monitor = spec::LivenessMonitor::new(&clocks_of(sim.states()));
    for _ in 0..20_000 {
        match sim.step() {
            StepOutcome::Terminal => panic!("unison must not terminate"),
            StepOutcome::Progress { .. } => {
                let clocks = clocks_of(sim.states());
                assert!(
                    spec::safety_holds(&g, &clocks, k),
                    "closure of safety violated"
                );
                monitor.observe(&clocks);
            }
        }
    }
    assert!(
        monitor.all_incremented_at_least(5),
        "post-stabilization liveness: min increments = {}",
        monitor.min_increments()
    );
}

/// Clock-gradient workload (worst-case-style initial configuration):
/// a maximal legal gradient plus one broken edge.
#[test]
fn recovers_from_clock_gradient() {
    let n = 12usize;
    let g = generators::path(n);
    let algo = unison_sdr(Unison::new(n as u64 + 1));
    // Gradient 0,1,2,…: every consecutive pair differs by exactly 1
    // except a tear in the middle (gap 4).
    let mut init = algo.initial_config(&g);
    for (i, s) in init.iter_mut().enumerate() {
        s.inner = if i < n / 2 {
            i as u64
        } else {
            (i + 4) as u64 % (n as u64 + 1)
        };
    }
    let check = unison_sdr(Unison::new(n as u64 + 1));
    let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 11);
    let out = sim
        .execution()
        .cap(5_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached);
    assert!(out.rounds_at_hit <= 3 * n as u64);
}

/// The stabilization moves stay under the Theorem 6 curve as n grows —
/// the measurable shape of `O(D·n²)`.
#[test]
fn move_growth_shape_on_rings() {
    for n in [6u64, 12, 24] {
        let g = generators::ring(n as usize);
        let d = metrics::diameter(&g) as u64;
        let (_, moves, _) = stabilization_run(&g, Daemon::RandomSubset { p: 0.5 }, n, n);
        assert!(
            moves <= spec::theorem6_move_bound(n, d),
            "n = {n}: moves {moves} exceed Theorem 6 bound"
        );
    }
}
