//! Why the paper requires `K > n` (§5.4): with `K = n` a ring admits a
//! locally-coherent *deadlock* — every clock one ahead of the next
//! around the cycle — exactly the configuration ruled out by the
//! counting argument of Lemma 18. These tests exhibit the deadlock at
//! `K = n` and its impossibility at `K = n + 1`.

use ssr_core::{Composed, Standalone};
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator};
use ssr_unison::{spec, unison_sdr, Unison};

/// The cyclic gradient `c_i = i` on a ring of `n = K` processes.
fn cyclic_gradient(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

#[test]
fn k_equals_n_deadlocks_on_the_ring() {
    let n = 6usize;
    let g = generators::ring(n);
    // Deliberately illegal period K = n (the constructor itself permits
    // it; only the validated entry point rejects it).
    let unison = Unison::new(n as u64);
    assert!(unison.validate_for(&g).is_err(), "K = n must be rejected");
    let alg = Standalone::new(unison);
    let sim = Simulator::new(&g, alg, cyclic_gradient(n), Daemon::Central, 0);
    // Every process sees its successor one ahead and its predecessor
    // one behind: locally coherent, yet nobody satisfies P_Up.
    assert!(
        sim.is_terminal(),
        "the cyclic gradient is a liveness deadlock when K = n"
    );
    // Safety still *looks* fine — which is exactly why the deadlock is
    // insidious and the paper insists on K > n.
    assert!(spec::safety_holds(&g, sim.states(), n as u64));
}

#[test]
fn k_greater_than_n_excludes_the_deadlock() {
    // Lemma 18: with K > n no terminal configuration satisfies
    // P_Clean ∧ P_ICorrect everywhere. The same gradient is no longer
    // closed around the ring.
    let n = 6usize;
    let g = generators::ring(n);
    let unison = Unison::for_graph(&g); // K = n + 1
    assert!(unison.validate_for(&g).is_ok());
    let alg = Standalone::new(unison);
    // With K = 7 the wrap edge (5 → 0) has gap 5 ≢ ±1: not even safe,
    // so the configuration is not a legitimate deadlock.
    let sim = Simulator::new(&g, alg, cyclic_gradient(n), Daemon::Central, 0);
    assert!(!spec::safety_holds(&g, sim.states(), n as u64 + 1));
}

#[test]
fn composition_cannot_escape_an_illegal_period() {
    // The deadlocked K = n configuration is *normal* for U ∘ SDR
    // (clean + locally correct), so even the reset layer accepts it:
    // the period bound is a genuine precondition, not something SDR
    // can compensate for.
    let n = 6usize;
    let g = generators::ring(n);
    let algo = unison_sdr(Unison::new(n as u64));
    let states: Vec<Composed<u64>> = cyclic_gradient(n)
        .into_iter()
        .map(Composed::clean)
        .collect();
    assert!(algo.is_normal_config(&g, &states));
    let mut sim = Simulator::new(&g, algo, states, Daemon::Central, 0);
    let out = sim.execution().cap(1_000).run();
    assert!(
        out.terminal && out.steps_used == 0,
        "stuck, by design of the counterexample"
    );
}

#[test]
fn legal_period_makes_every_safe_config_live() {
    // Complement: with K = n + 1, from any safe configuration the
    // system keeps incrementing (probed over a window).
    let n = 6usize;
    let g = generators::ring(n);
    let unison = Unison::for_graph(&g);
    let alg = Standalone::new(unison);
    // A safe band configuration.
    let clocks: Vec<u64> = (0..n).map(|i| u64::from(i % 2 == 0)).collect();
    let mut sim = Simulator::new(&g, alg, clocks, Daemon::RoundRobin, 1);
    let mut monitor = spec::LivenessMonitor::new(sim.states());
    for _ in 0..2_000 {
        assert!(!sim.is_terminal(), "Lemma 18: no deadlock with K > n");
        sim.step();
        monitor.observe(sim.states());
    }
    assert!(monitor.all_incremented_at_least(10));
}
