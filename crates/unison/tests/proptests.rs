//! Property-based tests for unison: safety closure, liveness, bounds.

use proptest::prelude::*;
use ssr_core::Standalone;
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator, StepOutcome};
use ssr_unison::{spec, unison_sdr, Unison};

fn daemon_from(idx: u8) -> Daemon {
    match idx % 5 {
        0 => Daemon::Synchronous,
        1 => Daemon::Central,
        2 => Daemon::RandomSubset { p: 0.4 },
        3 => Daemon::PreferLowRules,
        _ => Daemon::RoundRobin,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `P_Ok` is symmetric and reflexive for any period and clocks.
    #[test]
    fn p_ok_symmetric(k in 2u64..100, a in 0u64..100, b in 0u64..100) {
        let u = Unison::new(k);
        let (a, b) = (a % k, b % k);
        prop_assert!(u.p_ok(a, a));
        prop_assert_eq!(u.p_ok(a, b), u.p_ok(b, a));
    }

    /// succ/pred are inverse bijections on the clock domain.
    #[test]
    fn succ_pred_inverse(k in 2u64..100, c in 0u64..100) {
        let u = Unison::new(k);
        let c = c % k;
        prop_assert_eq!(u.pred(u.succ(c)), c);
        prop_assert_eq!(u.succ(u.pred(c)), c);
        prop_assert!(u.succ(c) < k);
    }

    /// Safety is closed under standalone U from any safe configuration
    /// (Lemma 17 / Corollary 7 machinery).
    #[test]
    fn safety_closed_standalone(
        n in 2usize..12,
        gseed in 0u64..30,
        base in 0u64..20,
        daemon_idx in 0u8..5,
        dseed in 0u64..50,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let unison = Unison::for_graph(&g);
        let k = unison.period();
        // A safe configuration: clocks within a ±1 band of `base`
        // (every band configuration is safe).
        let clocks: Vec<u64> = g
            .nodes()
            .map(|u| (base + u64::from(u.0 % 2)) % k)
            .collect();
        prop_assert!(spec::safety_holds(&g, &clocks, k));
        let alg = Standalone::new(unison);
        let mut sim = Simulator::new(&g, alg, clocks, daemon_from(daemon_idx), dseed);
        for _ in 0..200 {
            match sim.step() {
                StepOutcome::Terminal => {
                    prop_assert!(false, "unison must not terminate from safe configs");
                }
                StepOutcome::Progress { .. } => {
                    prop_assert!(spec::safety_holds(&g, sim.states(), k));
                }
            }
        }
    }

    /// U ∘ SDR stabilizes within 3n rounds and the Theorem 6 move
    /// bound from arbitrary configurations.
    #[test]
    fn stabilization_bounds(
        n in 3usize..12,
        gseed in 0u64..20,
        cseed in 0u64..100,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let nn = g.node_count() as u64;
        let d = ssr_graph::metrics::diameter(&g).max(1) as u64;
        let algo = unison_sdr(Unison::for_graph(&g));
        let init = algo.arbitrary_config(&g, cseed);
        let check = unison_sdr(Unison::for_graph(&g));
        let mut sim = Simulator::new(&g, algo, init, daemon_from(daemon_idx), cseed);
        let out = sim.execution().cap(5_000_000).until(|gr, st| check.is_normal_config(gr, st)).run();
        prop_assert!(out.reached);
        prop_assert!(out.rounds_at_hit <= spec::theorem7_round_bound(nn));
        prop_assert!(out.moves_at_hit <= spec::theorem6_move_bound(nn, d));
    }

    /// After stabilization, safety never breaks again (closure of the
    /// legitimate set).
    #[test]
    fn safety_closed_after_stabilization(
        n in 3usize..10,
        gseed in 0u64..20,
        cseed in 0u64..50,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let algo = unison_sdr(Unison::for_graph(&g));
        let k = algo.input().period();
        let init = algo.arbitrary_config(&g, cseed);
        let check = unison_sdr(Unison::for_graph(&g));
        let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, cseed);
        let out = sim.execution().cap(5_000_000).until(|gr, st| check.is_normal_config(gr, st)).run();
        prop_assert!(out.reached);
        for _ in 0..500 {
            sim.step();
            let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
            prop_assert!(spec::safety_holds(&g, &clocks, k));
        }
    }
}
