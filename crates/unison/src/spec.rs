//! Executable unison specification (§5.1) and the paper's bounds.
//!
//! * **Safety** — "the difference between clocks of every two neighbors
//!   is at most one increment at each instant": [`safety_holds`].
//! * **Liveness** — "each process increments its clock infinitely
//!   often": probed over finite windows by [`LivenessMonitor`].
//! * **Bounds** — Theorem 6's move bound in closed form
//!   ([`theorem6_move_bound`]) and Theorem 7's round bound
//!   ([`theorem7_round_bound`]).

use ssr_graph::Graph;
use ssr_runtime::{Observer, Simulator, StepOutcome};

use crate::unison::{Unison, UnisonSdr};

/// Whether every edge satisfies `P_Ok` (clock gap at most one,
/// circularly) — the unison safety predicate.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_unison::spec::safety_holds;
///
/// let g = generators::path(3);
/// assert!(safety_holds(&g, &[4, 5, 5], 7));
/// assert!(safety_holds(&g, &[6, 0, 6], 7)); // wrap-around counts as 1
/// assert!(!safety_holds(&g, &[4, 6, 5], 7));
/// ```
pub fn safety_holds(graph: &Graph, clocks: &[u64], period: u64) -> bool {
    let unison = Unison::new(period);
    graph
        .edges()
        .all(|(u, v)| unison.p_ok(clocks[u.index()], clocks[v.index()]))
}

/// Number of edges violating safety (for diagnostics).
pub fn safety_violations(graph: &Graph, clocks: &[u64], period: u64) -> usize {
    let unison = Unison::new(period);
    graph
        .edges()
        .filter(|&(u, v)| !unison.p_ok(clocks[u.index()], clocks[v.index()]))
        .count()
}

/// Observes clock histories to check liveness over a finite window.
///
/// Liveness ("increments infinitely often") is not falsifiable in
/// finite time; the monitor reports whether *every* process incremented
/// at least `target` times during the observed window, which is the
/// standard finite probe.
///
/// # Examples
///
/// ```
/// use ssr_unison::spec::LivenessMonitor;
///
/// let mut m = LivenessMonitor::new(&[0, 0]);
/// m.observe(&[1, 0]);
/// m.observe(&[1, 1]);
/// assert!(m.all_incremented_at_least(1));
/// assert!(!m.all_incremented_at_least(2));
/// assert_eq!(m.min_increments(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LivenessMonitor {
    previous: Vec<u64>,
    increments: Vec<u64>,
}

impl LivenessMonitor {
    /// Starts monitoring from the given clock vector.
    pub fn new(clocks: &[u64]) -> Self {
        LivenessMonitor {
            previous: clocks.to_vec(),
            increments: vec![0; clocks.len()],
        }
    }

    /// Records the clock vector after a step. Each changed clock counts
    /// as one increment (clocks move by single increments per step).
    pub fn observe(&mut self, clocks: &[u64]) {
        for (i, (&old, &new)) in self.previous.iter().zip(clocks).enumerate() {
            if old != new {
                self.increments[i] += 1;
            }
        }
        self.previous.clear();
        self.previous.extend_from_slice(clocks);
    }

    /// Whether every process incremented at least `target` times.
    pub fn all_incremented_at_least(&self, target: u64) -> bool {
        self.increments.iter().all(|&c| c >= target)
    }

    /// The minimum increment count over all processes.
    pub fn min_increments(&self) -> u64 {
        self.increments.iter().copied().min().unwrap_or(0)
    }
}

/// The unison specification as a plug-in [`Observer`] over `U ∘ SDR`:
/// attach it to an execution window after stabilization and it counts
/// per-step safety violations (must stay `0`, Cor. 7) and feeds a
/// [`LivenessMonitor`] (every clock must advance, Lem. 19) — the E6
/// probe, without a hand-rolled stepping loop.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_runtime::{Daemon, Simulator};
/// use ssr_unison::{spec, unison_sdr, Unison};
///
/// let g = generators::ring(6);
/// let algo = unison_sdr(Unison::for_graph(&g));
/// let init = algo.initial_config(&g); // already legitimate
/// let mut sim = Simulator::new(&g, algo, init, Daemon::Synchronous, 3);
/// let mut probe = spec::SpecObserver::watching(&sim);
/// sim.execution().cap(100).observe(&mut probe).run();
/// assert_eq!(probe.safety_violations(), 0);
/// assert!(probe.min_increments() > 0, "all clocks advanced");
/// ```
#[derive(Clone, Debug)]
pub struct SpecObserver {
    period: u64,
    monitor: LivenessMonitor,
    violations: usize,
}

impl SpecObserver {
    /// Starts observing from the clock vector `clocks`.
    pub fn new(clocks: &[u64], period: u64) -> Self {
        SpecObserver {
            period,
            monitor: LivenessMonitor::new(clocks),
            violations: 0,
        }
    }

    /// Starts observing from `sim`'s current configuration, taking the
    /// period from its algorithm.
    pub fn watching(sim: &Simulator<'_, UnisonSdr>) -> Self {
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        SpecObserver::new(&clocks, sim.algorithm().input().period())
    }

    /// Safety violations seen so far (edges breaking `P_Ok`, summed
    /// over every observed instant).
    pub fn safety_violations(&self) -> usize {
        self.violations
    }

    /// The minimum per-process increment count over the window.
    pub fn min_increments(&self) -> u64 {
        self.monitor.min_increments()
    }

    /// Whether every process incremented at least `target` times.
    pub fn all_incremented_at_least(&self, target: u64) -> bool {
        self.monitor.all_incremented_at_least(target)
    }

    /// The underlying liveness monitor.
    pub fn monitor(&self) -> &LivenessMonitor {
        &self.monitor
    }
}

impl Observer<UnisonSdr> for SpecObserver {
    fn on_step(&mut self, sim: &Simulator<'_, UnisonSdr>, _outcome: &StepOutcome) {
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        self.violations += safety_violations(sim.graph(), &clocks, self.period);
        self.monitor.observe(&clocks);
    }
}

/// Circular distance between two clock values modulo `period`
/// (the number of increments separating them, whichever way is shorter).
pub fn circular_distance(a: u64, b: u64, period: u64) -> u64 {
    let d = (a + period - b) % period;
    d.min(period - d)
}

/// Maximum *edge* drift: the largest circular clock distance across any
/// edge. Safety (`P_Ok` everywhere) is exactly `max_edge_drift ≤ 1`.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_unison::spec::max_edge_drift;
/// let g = generators::path(3);
/// assert_eq!(max_edge_drift(&g, &[0, 4, 5], 9), 4);
/// assert_eq!(max_edge_drift(&g, &[8, 0, 1], 9), 1); // wrap counts as 1
/// ```
pub fn max_edge_drift(graph: &Graph, clocks: &[u64], period: u64) -> u64 {
    graph
        .edges()
        .map(|(u, v)| circular_distance(clocks[u.index()], clocks[v.index()], period))
        .max()
        .unwrap_or(0)
}

/// Theorem 6's closed-form move bound for `U ∘ SDR` stabilization:
/// `(3D + 3)·n² + (3D + 1)·(n − 1) + 1` (the constant behind
/// `O(D·n²)`, from §5.5).
pub fn theorem6_move_bound(n: u64, diameter: u64) -> u64 {
    (3 * diameter + 3) * n * n + (3 * diameter + 1) * (n - 1) + 1
}

/// Theorem 7's stabilization round bound: `3n`.
pub fn theorem7_round_bound(n: u64) -> u64 {
    3 * n
}

/// Lemma 20's per-process move bound for standalone U started outside
/// the legitimate set: `3D` moves per process.
pub fn lemma20_move_bound(diameter: u64) -> u64 {
    3 * diameter
}

/// The move bound shown in \[23\] for the Boulinier et al. \[11\] baseline:
/// `O(D·n³ + α·n²)`. We take the safe parameter `α = n − 2` (always
/// legal since the longest chordless cycle is at most `n`), giving
/// `D·n³ + (n−2)·n²` as the comparison curve for E5.
pub fn baseline_move_curve(n: u64, diameter: u64) -> u64 {
    diameter * n * n * n + n.saturating_sub(2) * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn safety_on_legit_configs() {
        let g = generators::ring(4);
        assert!(safety_holds(&g, &[0, 0, 0, 0], 5));
        assert!(safety_holds(&g, &[1, 0, 0, 1], 5));
        assert!(safety_holds(&g, &[4, 0, 4, 4], 5));
        assert!(!safety_holds(&g, &[0, 2, 0, 0], 5));
    }

    #[test]
    fn violation_count() {
        let g = generators::path(4);
        assert_eq!(safety_violations(&g, &[0, 2, 4, 6], 9), 3);
        assert_eq!(safety_violations(&g, &[1, 1, 2, 2], 9), 0);
    }

    #[test]
    fn liveness_monitor_counts() {
        let mut m = LivenessMonitor::new(&[0, 5]);
        m.observe(&[1, 5]);
        m.observe(&[2, 6]);
        m.observe(&[2, 0]); // wrap: 6 -> 0 still one increment
        assert_eq!(m.min_increments(), 2);
        assert!(m.all_incremented_at_least(2));
    }

    #[test]
    fn circular_distance_props() {
        assert_eq!(circular_distance(0, 0, 7), 0);
        assert_eq!(circular_distance(1, 6, 7), 2);
        assert_eq!(circular_distance(6, 1, 7), 2);
        assert_eq!(circular_distance(3, 0, 7), 3);
    }

    #[test]
    fn drift_one_iff_safe() {
        let g = generators::ring(4);
        let safe = [0u64, 1, 1, 0];
        assert!(max_edge_drift(&g, &safe, 5) <= 1);
        assert!(safety_holds(&g, &safe, 5));
        let unsafe_ = [0u64, 2, 1, 0];
        assert!(max_edge_drift(&g, &unsafe_, 5) > 1);
        assert!(!safety_holds(&g, &unsafe_, 5));
    }

    #[test]
    fn bounds_are_monotone_in_n() {
        assert!(theorem6_move_bound(10, 3) < theorem6_move_bound(20, 3));
        assert!(theorem7_round_bound(7) == 21);
        assert_eq!(lemma20_move_bound(4), 12);
    }

    #[test]
    fn baseline_grows_faster_than_sdr_unison() {
        // The entire point of E5: the [11]-style bound is Θ(n) worse.
        for n in [8u64, 16, 32, 64] {
            let d = n / 2;
            assert!(baseline_move_curve(n, d) > theorem6_move_bound(n, d));
        }
    }
}
