//! Structured unison workloads: clock tears and E11-style clock
//! corruption, shared by the campaign layer, the explorer seed sets,
//! and the experiment harness.

use ssr_core::{Composed, SdrState, Status};
use ssr_graph::Graph;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::Simulator;

use crate::unison::UnisonSdr;

/// A "clock tear" workload for unison: a maximal legal gradient with a
/// discontinuity of `gap` in the middle — the classic locally-checkable
/// inconsistency (all reset variables clean).
pub fn unison_tear(graph: &Graph, period: u64, gap: u64) -> Vec<Composed<u64>> {
    let n = graph.node_count();
    graph
        .nodes()
        .map(|u| {
            let i = u.index();
            let clock = if i < n / 2 {
                (i as u64) % period
            } else {
                (i as u64 + gap) % period
            };
            Composed::new(SdrState::new(Status::C, 0), clock)
        })
        .collect()
}

/// Plain clock vector version of [`unison_tear`] (for the baseline
/// unison families, which have no reset variables).
pub fn unison_tear_plain(graph: &Graph, period: u64, gap: u64) -> Vec<u64> {
    unison_tear(graph, period, gap)
        .into_iter()
        .map(|c| c.inner)
        .collect()
}

/// E11-style clock corruption: run the legitimate system for `10n`
/// steps, then overwrite the clocks of `k` distinct random processes
/// (reset variables stay clean) and zero the counters so the run
/// measures recovery in isolation.
pub fn warm_up_and_corrupt_clocks(
    sim: &mut Simulator<'_, UnisonSdr>,
    k: u64,
    period: u64,
    rng: &mut Xoshiro256StarStar,
) {
    let n = sim.graph().node_count();
    sim.execution().cap(10 * n as u64).run();
    let k = (k as usize).min(n);
    // Clock-only corruption: keep each victim's reset variables,
    // overwrite its inner clock. Victim selection is shared with
    // callers that need the same fault pattern across systems — any
    // `corrupt_random` call on an equally-seeded RNG picks the same
    // victims.
    let snapshot = sim.states().to_vec();
    ssr_runtime::faults::corrupt_random(sim, k, rng, |u, r| {
        let mut s = snapshot[u.index()];
        s.inner = r.below(period);
        s
    });
    sim.reset_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn tear_has_discontinuity() {
        let g = generators::path(8);
        let states = unison_tear(&g, 9, 4);
        // Left half is a unit gradient; the middle edge jumps by 4.
        assert_eq!(states[3].inner, 3);
        assert_eq!(states[4].inner, 8);
        let plain = unison_tear_plain(&g, 9, 4);
        assert_eq!(plain[4], 8);
    }

    #[test]
    fn tear_reset_variables_are_clean() {
        let g = generators::ring(10);
        for s in unison_tear(&g, 11, 5) {
            assert_eq!(s.sdr.status, Status::C);
            assert_eq!(s.sdr.dist, 0);
        }
    }
}
