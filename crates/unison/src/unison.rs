//! Algorithm U (Algorithm 2 of the paper) as a [`ResetInput`].

use std::error::Error;
use std::fmt;

use ssr_core::{ResetInput, Sdr};
use ssr_graph::{Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{RuleId, RuleMask, StateView};

/// `rule_U(u) : P_Clean(u) ∧ P_Up(u) → c_u := (c_u + 1) % K`
///
/// (the `P_Clean` conjunct is added by the composition; standalone runs
/// add `P_ICorrect`, which `P_Up` implies).
pub const RULE_U: RuleId = RuleId(0);

/// The composition `U ∘ SDR`.
pub type UnisonSdr = Sdr<Unison>;

/// Composes Algorithm U with SDR (§5.5).
pub fn unison_sdr(unison: Unison) -> UnisonSdr {
    Sdr::new(unison)
}

/// Error returned when a period does not satisfy `K > n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodError {
    /// The offending period.
    pub period: u64,
    /// The network size it was checked against.
    pub n: usize,
}

impl fmt::Display for PeriodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unison requires period K > n (got K = {}, n = {})",
            self.period, self.n
        )
    }
}

impl Error for PeriodError {}

/// Algorithm U: each process keeps a periodic clock `c_u ∈ {0…K−1}` and
/// increments it whenever every neighbor is *on time or one ahead*
/// (`P_Up(u) ≡ ∀v ∈ N(u), c_v ∈ {c_u, (c_u+1)%K}`).
///
/// * `P_ICorrect(u) ≡ ∀v ∈ N(u), c_v ∈ {(c_u−1)%K, c_u, (c_u+1)%K}`
/// * `P_reset(u) ≡ c_u = 0`, `reset(u): c_u := 0`
///
/// Starting from all-zero clocks, U solves unison provided `K > n`
/// (Theorem 5); it is **not** self-stabilizing on its own — compose it
/// with SDR via [`unison_sdr`] for that.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_unison::Unison;
///
/// let g = generators::ring(10);
/// let u = Unison::for_graph(&g); // smallest legal period: n + 1
/// assert_eq!(u.period(), 11);
/// assert!(Unison::new(10).validate_for(&g).is_err()); // K = n is illegal
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unison {
    k: u64,
}

impl Unison {
    /// Unison with period `K` (validate against a graph with
    /// [`Unison::validate_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a periodic clock needs at least two values).
    pub fn new(k: u64) -> Self {
        assert!(k >= 2, "period must be at least 2");
        Unison { k }
    }

    /// Unison with the smallest legal period for `graph`: `K = n + 1`.
    pub fn for_graph(graph: &Graph) -> Self {
        Unison::new(graph.node_count() as u64 + 1)
    }

    /// The period `K`.
    pub fn period(&self) -> u64 {
        self.k
    }

    /// Checks the paper's requirement `K > n`.
    ///
    /// # Errors
    ///
    /// Returns a [`PeriodError`] if `K ≤ n`.
    pub fn validate_for(&self, graph: &Graph) -> Result<(), PeriodError> {
        if self.k > graph.node_count() as u64 {
            Ok(())
        } else {
            Err(PeriodError {
                period: self.k,
                n: graph.node_count(),
            })
        }
    }

    /// `(c + 1) % K`.
    #[inline]
    pub fn succ(&self, c: u64) -> u64 {
        (c + 1) % self.k
    }

    /// `(c − 1) % K`.
    #[inline]
    pub fn pred(&self, c: u64) -> u64 {
        (c + self.k - 1) % self.k
    }

    /// `P_Ok(u, v) ≡ c_v ∈ {(c_u−1)%K, c_u, (c_u+1)%K}`.
    #[inline]
    pub fn p_ok(&self, cu: u64, cv: u64) -> bool {
        cv == cu || cv == self.succ(cu) || cv == self.pred(cu)
    }

    /// `P_Up(u) ≡ ∀v ∈ N(u), c_v ∈ {c_u, (c_u+1)%K}` — `u` is on time
    /// or one increment late w.r.t. every neighbor.
    pub fn p_up<V: StateView<u64>>(&self, u: NodeId, view: &V) -> bool {
        let cu = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| *view.state(v) == cu || *view.state(v) == self.succ(cu))
    }
}

impl ResetInput for Unison {
    type State = u64;

    fn rule_count(&self) -> usize {
        1
    }

    fn rule_name(&self, _: RuleId) -> &'static str {
        "rule_U"
    }

    fn enabled_mask<V: StateView<u64>>(&self, u: NodeId, view: &V) -> RuleMask {
        RuleMask::from_bool(self.p_up(u, view))
    }

    fn apply<V: StateView<u64>>(&self, u: NodeId, view: &V, _: RuleId) -> u64 {
        self.succ(*view.state(u))
    }

    fn p_icorrect<V: StateView<u64>>(&self, u: NodeId, view: &V) -> bool {
        let cu = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| self.p_ok(cu, *view.state(v)))
    }

    fn p_reset(&self, _: NodeId, state: &u64) -> bool {
        *state == 0
    }

    fn reset_state(&self, _: NodeId) -> u64 {
        0
    }

    fn arbitrary_state(&self, _: NodeId, rng: &mut Xoshiro256StarStar) -> u64 {
        rng.below(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::validate;
    use ssr_graph::generators;
    use ssr_runtime::ConfigView;

    #[test]
    fn period_validation() {
        let g = generators::ring(5);
        assert!(Unison::new(6).validate_for(&g).is_ok());
        let err = Unison::new(5).validate_for(&g).unwrap_err();
        assert_eq!(err, PeriodError { period: 5, n: 5 });
        assert!(err.to_string().contains("K > n"));
    }

    #[test]
    #[should_panic(expected = "period must be at least 2")]
    fn tiny_period_panics() {
        let _ = Unison::new(1);
    }

    #[test]
    fn modular_arithmetic() {
        let u = Unison::new(5);
        assert_eq!(u.succ(4), 0);
        assert_eq!(u.pred(0), 4);
        assert_eq!(u.succ(2), 3);
        assert_eq!(u.pred(3), 2);
    }

    #[test]
    fn p_ok_is_circular() {
        let u = Unison::new(7);
        assert!(u.p_ok(0, 0));
        assert!(u.p_ok(0, 1));
        assert!(u.p_ok(0, 6)); // (0 − 1) mod 7
        assert!(!u.p_ok(0, 2));
        assert!(!u.p_ok(0, 5));
    }

    #[test]
    fn p_up_requires_on_time_or_late() {
        let g = generators::path(3);
        let u = Unison::new(9);
        // Middle process: both neighbors at c or c+1 -> enabled.
        let clocks = vec![4u64, 4, 5];
        let v = ConfigView::new(&g, &clocks);
        assert!(u.p_up(NodeId(1), &v));
        assert!(u.p_up(NodeId(0), &v));
        assert!(!u.p_up(NodeId(2), &v)); // neighbor at 4 = c − 1: u is ahead
    }

    #[test]
    fn wrap_around_increment() {
        let g = generators::path(2);
        let u = Unison::new(3);
        let clocks = vec![2u64, 2];
        let v = ConfigView::new(&g, &clocks);
        assert_eq!(u.apply(NodeId(0), &v, RULE_U), 0);
    }

    #[test]
    fn requirements_2d_2e_hold() {
        let g = generators::random_connected(12, 6, 3);
        validate::check_requirements(&Unison::for_graph(&g), &g).unwrap();
    }

    #[test]
    fn icorrect_closure_probe() {
        // Requirement 2a (Lemma 17): P_ICorrect is closed by U.
        let g = generators::random_connected(10, 5, 8);
        let u = Unison::for_graph(&g);
        for seed in 0..5 {
            let init = validate::arbitrary_standalone_config(&u, &g, seed);
            validate::check_icorrect_closed_on_run(
                &u,
                &g,
                init,
                ssr_runtime::Daemon::RandomSubset { p: 0.5 },
                seed,
                3_000,
            )
            .unwrap();
        }
    }

    #[test]
    fn arbitrary_state_in_period() {
        let u = Unison::new(4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        for _ in 0..100 {
            assert!(u.arbitrary_state(NodeId(0), &mut rng) < 4);
        }
    }
}
