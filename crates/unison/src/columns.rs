//! Columnar layouts for the unison states (see `ssr_runtime::soa`).
//!
//! Algorithm U's whole per-process state is the clock `c_u`, so its
//! column set is the flat scalar array [`ClockColumns`]; the composed
//! `U ∘ SDR` state transposes into SDR columns plus that clock array
//! ([`UnisonSdrColumns`]).

use ssr_core::columns::ComposedColumns;
use ssr_runtime::ScalarColumns;

/// The flat clock array — Algorithm U's state is the scalar `c_u`.
pub type ClockColumns = ScalarColumns<u64>;

/// Columns of the composed `U ∘ SDR` state: SDR status/distance arrays
/// plus the clock array.
pub type UnisonSdrColumns = ComposedColumns<ClockColumns>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unison::{unison_sdr, Unison};
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, Simulator, StateColumns};

    #[test]
    fn simulator_snapshot_transposes_unison_sdr_states() {
        let g = generators::ring(12);
        let algo = unison_sdr(Unison::for_graph(&g));
        let init = algo.arbitrary_config(&g, 0xC01);
        let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 5);
        for _ in 0..20 {
            sim.step();
        }
        let mut cols = UnisonSdrColumns::default();
        sim.snapshot_columns(&mut cols);
        assert_eq!(cols.len(), 12);
        assert_eq!(cols.to_states(), sim.states());
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        assert_eq!(cols.inner().values(), &clocks[..]);
        // Snapshots reuse the buffers: a second call replaces, never
        // appends.
        sim.snapshot_columns(&mut cols);
        assert_eq!(cols.len(), 12);
    }
}
