//! The unison algorithm families: the self-stabilizing composition
//! `U ∘ SDR` (label `unison-sdr`) and standalone Algorithm U (label
//! `unison`), registrable in any
//! [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry).

use ssr_core::family::max_sdr_moves_per_process;
use ssr_core::{validate, ResetInput, Standalone};
use ssr_graph::Graph;
use ssr_runtime::analysis::{
    audit_runs, collect_footprints, AnalyzeFamily, AnalyzeOptions, GraphAnalysis, RngAudit,
};
use ssr_runtime::exhaustive::ExploreOptions;
use ssr_runtime::family::{
    explore_sample_seeds, explore_with_replay, stochastic_max_runs, AlgorithmSpec, Bounds,
    ExecBudget, ExploreFamily, ExploreReport, Family, FamilyProbe, FamilyRunOutcome, InitPlan,
    ProbeBridge, RunSeeds, StochasticMax, Verdict,
};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, Daemon, Simulator};

use crate::spec;
use crate::unison::{unison_sdr, Unison, UnisonSdr};
use crate::workloads::{unison_tear, unison_tear_plain, warm_up_and_corrupt_clocks};

/// The spec handle `unison-sdr`.
pub fn unison_sdr_spec() -> AlgorithmSpec {
    AlgorithmSpec::plain("unison-sdr")
}

/// The spec handle `unison` (standalone Algorithm U).
pub fn unison_spec() -> AlgorithmSpec {
    AlgorithmSpec::plain("unison")
}

/// The family `U ∘ SDR` — self-stabilizing unison with the paper's
/// sharp bounds (Theorems 6 and 7).
///
/// Init-plan semantics: `Normal` and `CorruptClocks` start from
/// `γ_init` (all-zero clocks; the corruption plan then warms up and
/// corrupts `k` random clocks before measuring recovery), `Tear`
/// builds the clock-gradient discontinuity workload, `Arbitrary` is
/// the adversarial sampler. The target is the set of normal
/// configurations; the verdict checks Thm 7 (rounds) and Thm 6
/// (moves).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnisonSdrFamily;

impl UnisonSdrFamily {
    fn thm_bounds(graph: &Graph) -> Bounds {
        let nn = graph.node_count() as u64;
        let d = ssr_graph::metrics::diameter(graph).max(1) as u64;
        Bounds {
            rounds: Some(spec::theorem7_round_bound(nn)),
            moves: Some(spec::theorem6_move_bound(nn, d)),
        }
    }

    /// The canonical exploration seed set: `γ_init`, the broadcast
    /// chain, the half-n tear, and `samples` adversarial draws.
    fn seed_set(
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
    ) -> (UnisonSdr, Vec<Vec<<UnisonSdr as Algorithm>::State>>) {
        let algo = unison_sdr(Unison::for_graph(graph));
        let nn = graph.node_count() as u64;
        let period = algo.input().period();
        let mut inits = vec![
            algo.initial_config(graph),
            ssr_core::workloads::sdr_broadcast_chain(&algo, graph),
            unison_tear(graph, period, (nn / 2).max(1)),
        ];
        inits.extend(
            explore_sample_seeds(scenario_seed, samples)
                .iter()
                .map(|&s| algo.arbitrary_config(graph, s)),
        );
        (algo, inits)
    }
}

impl Family for UnisonSdrFamily {
    fn id(&self) -> &str {
        "unison-sdr"
    }

    fn bounds(&self, graph: &Graph) -> Bounds {
        Self::thm_bounds(graph)
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let nn = graph.node_count() as u64;
        let algo = unison_sdr(Unison::for_graph(graph));
        let period = algo.input().period();
        let rc = algo.rule_count();
        let check = unison_sdr(Unison::for_graph(graph));
        let init_cfg = match init {
            InitPlan::Normal | InitPlan::CorruptClocks { .. } => algo.initial_config(graph),
            InitPlan::Tear { gap } => unison_tear(graph, period, gap.resolve(nn)),
            InitPlan::Arbitrary => algo.arbitrary_config(graph, seeds.init),
        };
        let mut sim = Simulator::new(graph, algo, init_cfg, daemon.clone(), seeds.sim);
        if let InitPlan::CorruptClocks { k } = init {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seeds.fault);
            warm_up_and_corrupt_clocks(&mut sim, k.resolve(nn), period, &mut rng);
        }
        let mut bridge = ProbeBridge::new(probe);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut bridge)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        bridge.collect_trace(&mut sim);
        let pp = max_sdr_moves_per_process(graph, sim.stats(), rc);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = pp;
        // Thm 7 (rounds) and Thm 6 (moves).
        let bounds = Self::thm_bounds(graph);
        let (rb, mb) = (bounds.rounds.unwrap(), bounds.moves.unwrap());
        fo.bound_rounds = Some(rb);
        fo.bound_moves = Some(mb);
        fo.verdict = if out.reached && out.rounds_at_hit <= rb && out.moves_at_hit <= mb {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        fo
    }

    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        Some(
            validate::check_requirements(&Unison::for_graph(graph), graph)
                .map_err(|e| e.to_string()),
        )
    }

    fn explore(&self) -> Option<&dyn ExploreFamily> {
        Some(self)
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for UnisonSdrFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        ssr_runtime::analysis::rule_names(&unison_sdr(Unison::for_graph(graph)))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

impl ExploreFamily for UnisonSdrFamily {
    fn bounds(&self, graph: &Graph) -> Bounds {
        Self::thm_bounds(graph)
    }

    fn explore(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        opts: &ExploreOptions,
    ) -> ExploreReport {
        let (algo, inits) = Self::seed_set(graph, scenario_seed, samples);
        let check = unison_sdr(Unison::for_graph(graph));
        explore_with_replay(
            graph,
            &algo,
            &inits,
            move |gr, st| check.is_normal_config(gr, st),
            opts,
        )
    }

    fn stochastic_max(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        trials: u64,
        cap: u64,
    ) -> StochasticMax {
        let (algo, inits) = Self::seed_set(graph, scenario_seed, samples);
        let check = unison_sdr(Unison::for_graph(graph));
        stochastic_max_runs(
            graph,
            &algo,
            &inits,
            move |gr, st| check.is_normal_config(gr, st),
            scenario_seed,
            trials,
            cap,
        )
    }
}

/// Standalone Algorithm U (no reset layer), gated on `P_ICorrect` by
/// the shared [`Standalone`] wrapper — the single home of that gate.
///
/// Theorem 5 only speaks from `γ_init`, so `Normal`, `Arbitrary`, and
/// `CorruptClocks` all start there (the corruption plan then corrupts
/// `k` random clocks and measures what recovery U manages *without*
/// resets); `Tear` starts from the plain-clock tear. The target is the
/// unison safety predicate; there is no closed-form bound — U alone is
/// not self-stabilizing, and a run that never recovers is a finding,
/// not a campaign failure.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnisonFamily;

impl UnisonFamily {
    /// The analysis seed set: `γ_init`, the plain-clock tear, and
    /// `samples` uniformly corrupted clock vectors — the standalone
    /// family has no explore hook, so its analysis coverage is built
    /// here directly.
    fn seed_set(
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
    ) -> (Standalone<Unison>, Vec<Vec<u64>>) {
        let unison = Unison::for_graph(graph);
        let period = unison.period();
        let algo = Standalone::new(unison);
        let nn = graph.node_count() as u64;
        let mut inits = vec![
            algo.initial_config(graph),
            unison_tear_plain(graph, period, (nn / 2).max(1)),
        ];
        for s in explore_sample_seeds(scenario_seed, samples) {
            let mut rng = Xoshiro256StarStar::seed_from_u64(s);
            inits.push(
                graph
                    .nodes()
                    .map(|u| algo.inner().arbitrary_state(u, &mut rng))
                    .collect(),
            );
        }
        (algo, inits)
    }
}

impl Family for UnisonFamily {
    fn id(&self) -> &str {
        "unison"
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let nn = graph.node_count() as u64;
        let unison = Unison::for_graph(graph);
        let period = unison.period();
        let algo = Standalone::new(unison);
        let init_cfg = match init {
            InitPlan::Tear { gap } => unison_tear_plain(graph, period, gap.resolve(nn)),
            _ => algo.initial_config(graph),
        };
        let mut sim = Simulator::new(graph, algo, init_cfg, daemon.clone(), seeds.sim);
        if let InitPlan::CorruptClocks { k } = init {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seeds.fault);
            ssr_runtime::faults::corrupt_random(
                &mut sim,
                k.resolve(nn).min(nn) as usize,
                &mut rng,
                |_, r| r.below(period),
            );
            sim.reset_stats();
        }
        let mut bridge = ProbeBridge::new(probe);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut bridge)
            .until(|gr, st| spec::safety_holds(gr, st, period))
            .run();
        bridge.collect_trace(&mut sim);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = sim.stats().max_moves_per_process();
        // No closed-form bound: U is not self-stabilizing on its own.
        fo
    }

    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        Some(
            validate::check_requirements(&Unison::for_graph(graph), graph)
                .map_err(|e| e.to_string()),
        )
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for UnisonFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        ssr_runtime::analysis::rule_names(&Standalone::new(Unison::for_graph(graph)))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    fn seeds() -> RunSeeds {
        RunSeeds {
            init: 1,
            sim: 2,
            fault: 3,
        }
    }

    #[test]
    fn unison_sdr_family_passes_all_init_plans() {
        use ssr_runtime::family::Amount;
        let g = generators::ring(8);
        for init in [
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear { gap: Amount::HalfN },
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ] {
            let out = UnisonSdrFamily.run(
                &g,
                &init,
                &Daemon::RandomSubset { p: 0.5 },
                seeds(),
                2_000_000.into(),
                None,
            );
            assert_eq!(out.verdict, Verdict::Pass, "{init:?}: {out:?}");
        }
    }

    #[test]
    fn unison_sdr_family_explores_within_bounds() {
        let g = generators::path(4);
        let fam = UnisonSdrFamily;
        let ef = Family::explore(&fam).unwrap();
        let report = ef.explore(&g, 0xE13, 2, &ExploreOptions::default());
        let (summary, replay_ok) = report.result.expect("tiny path fits");
        assert!(summary.verified && replay_ok);
        let bounds = ExploreFamily::bounds(&fam, &g);
        let worst = summary.worst.unwrap();
        assert!(worst.rounds <= bounds.rounds.unwrap());
        assert!(worst.moves <= bounds.moves.unwrap());
    }

    #[test]
    fn standalone_unison_is_safe_from_gamma_init() {
        let g = generators::ring(6);
        let out = UnisonFamily.run(
            &g,
            &InitPlan::Normal,
            &Daemon::Central,
            seeds(),
            100_000.into(),
            None,
        );
        assert!(out.reached, "γ_init satisfies the spec instantly");
        assert_eq!(out.verdict, Verdict::NoBound);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn standalone_unison_cannot_always_repair_a_tear() {
        use ssr_runtime::family::Amount;
        // On a path, the tear edge freezes both sides: U alone has no
        // reset rule, so the run ends without restoring safety — the
        // ablation the reset layer exists for.
        let g = generators::path(8);
        let out = UnisonFamily.run(
            &g,
            &InitPlan::Tear { gap: Amount::HalfN },
            &Daemon::Central,
            seeds(),
            200_000.into(),
            None,
        );
        assert!(!out.reached, "{out:?}");
        assert_eq!(out.verdict, Verdict::NoBound);
    }

    #[test]
    fn family_requirements_pass() {
        let g = generators::star(5);
        assert_eq!(UnisonSdrFamily.requirements(&g), Some(Ok(())));
        assert_eq!(UnisonFamily.requirements(&g), Some(Ok(())));
    }

    #[test]
    fn spec_handles() {
        assert_eq!(unison_sdr_spec().label(), "unison-sdr");
        assert_eq!(unison_spec().label(), "unison");
        assert_eq!(UnisonSdrFamily.id(), "unison-sdr");
        assert_eq!(UnisonFamily.id(), "unison");
    }
}
