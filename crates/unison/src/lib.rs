//! Asynchronous unison (§5 of the SDR paper).
//!
//! The *unison* problem is a clock-synchronization problem: every
//! process `u` holds a periodic clock `c_u ∈ {0, …, K−1}` and must
//! increment it infinitely often (liveness) while staying within one
//! increment of every neighbor (safety).
//!
//! This crate provides:
//!
//! * [`Unison`] — Algorithm U (Algorithm 2): a *non-self-stabilizing*
//!   distributed unison, correct from the configuration where all clocks
//!   are `0`, provided the period satisfies `K > n` (Theorem 5);
//! * the composition `U ∘ SDR` via [`unison_sdr`] — a self-stabilizing
//!   unison with stabilization time ≤ `3n` rounds (Theorem 7) and
//!   `O(D·n²)` moves (Theorem 6), improving on the `O(D·n³ + α·n²)`
//!   moves of Boulinier et al. \[11\];
//! * [`spec`] — executable safety/liveness checkers and the closed-form
//!   move bound of Theorem 6.
//!
//! # Examples
//!
//! Self-stabilizing unison recovering from an arbitrary configuration:
//!
//! ```
//! use ssr_graph::generators;
//! use ssr_runtime::{Daemon, Simulator};
//! use ssr_unison::{spec, unison_sdr, Unison};
//!
//! let g = generators::ring(8);
//! let algo = unison_sdr(Unison::for_graph(&g));
//! let init = algo.arbitrary_config(&g, 1234);
//! let check = unison_sdr(Unison::for_graph(&g));
//! let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 5);
//! let out = sim.execution().cap(1_000_000).until(|gr, st| check.is_normal_config(gr, st)).run();
//! assert!(out.reached);
//! assert!(out.rounds_at_hit <= 3 * 8, "Theorem 7");
//! // From a normal configuration the unison specification holds:
//! let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
//! assert!(spec::safety_holds(&g, &clocks, check.input().period()));
//! ```

#![forbid(unsafe_code)]

pub mod columns;
pub mod family;
pub mod spec;
mod unison;
pub mod workloads;

pub use family::{UnisonFamily, UnisonSdrFamily};
pub use unison::{unison_sdr, PeriodError, Unison, UnisonSdr, RULE_U};
