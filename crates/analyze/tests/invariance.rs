//! Property tests for the determinism contract of the analyzer: the
//! footprints a family exhibits are a property of the family, not of
//! the scenario seed used to widen its seed set, and the registry
//! report is byte-identical at any worker-thread count.

use std::sync::Arc;

use proptest::prelude::*;
use ssr_analyze::fixtures::{FarSightFamily, ShadowedPairFamily};
use ssr_analyze::{analyze_registry, to_json};
use ssr_runtime::analysis::{AnalyzeFamily, AnalyzeOptions};
use ssr_runtime::family::FamilyRegistry;

fn fixture_registry() -> FamilyRegistry {
    let mut registry = FamilyRegistry::new();
    registry.register(Arc::new(FarSightFamily));
    registry.register(Arc::new(ShadowedPairFamily));
    registry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The fixture seed sets enumerate states exhaustively, so the
    /// explored closure — and every finding and rule statistic in it —
    /// must not drift with the scenario seed.
    #[test]
    fn footprints_are_seed_invariant(seed in 0u64..u64::MAX) {
        let g = ssr_graph::generators::ring(4);
        let reference = FarSightFamily.footprints(&g, "ring4", &AnalyzeOptions::default());
        let opts = AnalyzeOptions { scenario_seed: seed, ..AnalyzeOptions::default() };
        let reseeded = FarSightFamily.footprints(&g, "ring4", &opts);
        prop_assert_eq!(format!("{reference:?}"), format!("{reseeded:?}"));
    }

    /// The registry report is merged in label order: its JSON rendering
    /// is byte-identical at any thread count.
    #[test]
    fn report_is_thread_count_invariant(threads in 1usize..8) {
        let opts = AnalyzeOptions::default();
        let sequential = to_json(&analyze_registry(&fixture_registry(), &opts, 1));
        let parallel = to_json(&analyze_registry(&fixture_registry(), &opts, threads));
        prop_assert_eq!(sequential, parallel);
    }
}
