//! Planted-violation families the analyzer must flag.
//!
//! These are real, runnable [`Family`] implementations registered in
//! tests and in the CI self-test (`analyze --fixtures`): if the
//! analyzer ever stops reporting them, the gate itself is broken.
//!
//! * [`FarSightFamily`] — a guard that reads two hops away, violating
//!   the §2.2 locality obligation (and, when the far node is itself
//!   enabled, non-adjacent commutativity).
//! * [`ShadowedPairFamily`] — a rule that is only ever enabled
//!   together with a lower-index rule, so it can never fire under the
//!   default lowest-index resolution.

use ssr_graph::{Graph, NodeId};
use ssr_runtime::analysis::{
    audit_runs, collect_footprints, rule_names, AnalyzeFamily, AnalyzeOptions, GraphAnalysis,
    RngAudit,
};
use ssr_runtime::family::ProbeBridge;
use ssr_runtime::{
    Algorithm, Daemon, ExecBudget, Execution, Family, FamilyProbe, FamilyRunOutcome, InitPlan,
    RuleId, RuleMask, RunSeeds, StateView,
};

// ---------------------------------------------------------------------
// FarSight: a non-local guard
// ---------------------------------------------------------------------

/// Flood whose guard peeks **two hops** out: a node catches when any
/// node at distance ≤ 2 is infected. The distance-2 reads are exactly
/// what the locality obligation forbids.
#[derive(Clone, Copy, Debug)]
pub struct FarSight;

impl Algorithm for FarSight {
    type State = bool;

    fn rule_count(&self) -> usize {
        1
    }

    fn rule_name(&self, _: RuleId) -> &'static str {
        "catch@2"
    }

    fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
        if *view.state(u) {
            return RuleMask::NONE;
        }
        let g = view.graph();
        let mut infected_nearby = false;
        for &v in g.neighbors(u) {
            if *view.state(v) {
                infected_nearby = true;
            }
            // The planted defect: reading the neighbors' neighbors.
            for &w in g.neighbors(v) {
                if *view.state(w) && w != u {
                    infected_nearby = true;
                }
            }
        }
        RuleMask::from_bool(infected_nearby)
    }

    fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
        true
    }
}

/// The registrable family around [`FarSight`].
pub struct FarSightFamily;

fn far_sight_seeds(graph: &Graph) -> Vec<Vec<bool>> {
    let n = graph.node_count();
    let mut seeds = vec![vec![false; n]];
    for i in 0..n {
        let mut s = vec![false; n];
        s[i] = true;
        seeds.push(s);
    }
    seeds
}

impl Family for FarSightFamily {
    fn id(&self) -> &str {
        "fixture-far-sight"
    }

    fn run(
        &self,
        graph: &Graph,
        _init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let mut init = vec![false; graph.node_count()];
        init[0] = true;
        let mut bridge = ProbeBridge::new(probe);
        let report = Execution::of(graph, FarSight)
            .init(init)
            .daemon(daemon.clone())
            .seed(seeds.sim)
            .cap(budget.cap)
            .observe(&mut bridge)
            .run_report();
        FamilyRunOutcome::from_run(&report.outcome, report.sim.stats().steps)
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for FarSightFamily {
    fn rule_names(&self, _graph: &Graph) -> Vec<String> {
        rule_names(&FarSight)
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        collect_footprints(graph, graph_name, &FarSight, &far_sight_seeds(graph), opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        audit_runs(graph, &FarSight, &far_sight_seeds(graph), opts)
    }
}

// ---------------------------------------------------------------------
// ShadowedPair: a rule that can never fire first
// ---------------------------------------------------------------------

/// Two rules over a `u8` state with **identical guards** (`state == 0`)
/// and distinct actions. Rule 1 is only ever enabled together with
/// rule 0, so the default lowest-index resolution can never fire it —
/// the planted rule-table defect.
#[derive(Clone, Copy, Debug)]
pub struct ShadowedPair;

impl Algorithm for ShadowedPair {
    type State = u8;

    fn rule_count(&self) -> usize {
        2
    }

    fn rule_name(&self, r: RuleId) -> &'static str {
        ["settle", "shadowed"][r.index()]
    }

    fn enabled_mask<V: StateView<u8>>(&self, u: NodeId, view: &V) -> RuleMask {
        let zero = *view.state(u) == 0;
        RuleMask::from_bool(zero).with_if(RuleId(1), zero)
    }

    fn apply<V: StateView<u8>>(&self, _: NodeId, _: &V, r: RuleId) -> u8 {
        match r.index() {
            0 => 1,
            _ => 2,
        }
    }
}

/// The registrable family around [`ShadowedPair`].
pub struct ShadowedPairFamily;

fn shadowed_seeds(graph: &Graph) -> Vec<Vec<u8>> {
    let n = graph.node_count();
    let mut seeds = vec![vec![0u8; n]];
    for i in 0..n {
        let mut s = vec![1u8; n];
        s[i] = 0;
        seeds.push(s);
    }
    seeds
}

impl Family for ShadowedPairFamily {
    fn id(&self) -> &str {
        "fixture-shadowed-pair"
    }

    fn run(
        &self,
        graph: &Graph,
        _init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let init = vec![0u8; graph.node_count()];
        let mut bridge = ProbeBridge::new(probe);
        let report = Execution::of(graph, ShadowedPair)
            .init(init)
            .daemon(daemon.clone())
            .seed(seeds.sim)
            .cap(budget.cap)
            .observe(&mut bridge)
            .run_report();
        FamilyRunOutcome::from_run(&report.outcome, report.sim.stats().steps)
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for ShadowedPairFamily {
    fn rule_names(&self, _graph: &Graph) -> Vec<String> {
        rule_names(&ShadowedPair)
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        collect_footprints(
            graph,
            graph_name,
            &ShadowedPair,
            &shadowed_seeds(graph),
            opts,
        )
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        audit_runs(graph, &ShadowedPair, &shadowed_seeds(graph), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_family;
    use ssr_runtime::FindingKind;

    #[test]
    fn far_sight_flagged_with_actionable_diagnostics() {
        let report = analyze_family(&FarSightFamily, &AnalyzeOptions::default());
        assert!(!report.certified());
        let non_local: Vec<_> = report
            .findings()
            .filter(|f| f.kind == FindingKind::NonLocalGuard)
            .collect();
        assert!(!non_local.is_empty(), "distance-2 reads must be reported");
        assert!(
            non_local
                .iter()
                .all(|f| f.detail.contains("distance 2") && f.graph.is_some()),
            "diagnostics name the distance and the graph: {non_local:?}"
        );
        // The far node can itself be enabled, so commutativity breaks too.
        assert!(report
            .findings()
            .any(|f| f.kind == FindingKind::NonCommutative));
    }

    #[test]
    fn shadowed_pair_flagged_with_actionable_diagnostics() {
        let report = analyze_family(&ShadowedPairFamily, &AnalyzeOptions::default());
        assert!(!report.certified());
        let shadowed: Vec<_> = report
            .findings()
            .filter(|f| f.kind == FindingKind::ShadowedRule)
            .collect();
        assert_eq!(shadowed.len(), 1, "exactly rule 1 is shadowed");
        assert_eq!(shadowed[0].rule.as_deref(), Some("shadowed"));
        assert!(
            shadowed[0].detail.contains("lowest-index"),
            "diagnostic explains the default resolution: {}",
            shadowed[0].detail
        );
        // Locality itself is fine in this fixture.
        assert!(!report
            .findings()
            .any(|f| f.kind == FindingKind::NonLocalGuard));
    }

    #[test]
    fn fixtures_are_runnable_families() {
        let g = ssr_graph::generators::ring(5);
        let out = FarSightFamily.run(
            &g,
            &InitPlan::Normal,
            &Daemon::Synchronous,
            RunSeeds {
                init: 7,
                sim: 8,
                fault: 9,
            },
            ExecBudget::steps(1_000),
            None,
        );
        assert!(out.terminal, "far-sight flood terminates");
    }
}
