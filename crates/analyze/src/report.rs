//! `ANALYSIS.json` rendering, validation, and the human table.
//!
//! The workspace is serde-free, so the writer emits JSON by hand with
//! a fixed key order (reports are byte-stable across thread counts —
//! the CI gate `cmp`s two renderings), and [`validate_json`] checks a
//! document against the `ssr-analysis/v1` schema using the shared
//! recursive-descent parser in [`ssr_obs::json`] (which started life
//! here before moving to its one home).

use std::fmt::Write as _;

use ssr_runtime::analysis::{Finding, GraphAnalysis, RngAudit, Severity};

use crate::{AnalysisReport, FamilyReport, SCHEMA};

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt_str(s: &Option<String>) -> String {
    match s {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"kind\":\"{}\",\"severity\":\"{}\",\"rule\":{},\"graph\":{},\"detail\":\"{}\"}}",
        f.kind.code(),
        match f.kind.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        },
        opt_str(&f.rule),
        opt_str(&f.graph),
        escape(&f.detail),
    )
}

fn findings_json(fs: &[Finding]) -> String {
    let items: Vec<String> = fs.iter().map(finding_json).collect();
    format!("[{}]", items.join(","))
}

fn graph_json(g: &GraphAnalysis) -> String {
    let rules: Vec<String> = g
        .rules
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"enabled\":{},\"fired_first\":{},\"applies\":{},\
                 \"changed\":{},\"guard_read_dist_max\":{},\"action_read_dist_max\":{},\
                 \"guard_reads_max\":{},\"action_reads_max\":{}}}",
                escape(&r.name),
                r.enabled,
                r.fired_first,
                r.applies,
                r.changed,
                r.guard_read_dist_max,
                r.action_read_dist_max,
                r.guard_reads_max,
                r.action_reads_max,
            )
        })
        .collect();
    let overlaps: Vec<String> = g
        .overlaps
        .iter()
        .map(|o| {
            format!(
                "{{\"a\":{},\"b\":{},\"together\":{},\"identical\":{}}}",
                o.a, o.b, o.together, o.identical
            )
        })
        .collect();
    format!(
        "{{\"graph\":\"{}\",\"nodes\":{},\"configs\":{},\"truncated\":{},\
         \"rules\":[{}],\"overlaps\":[{}],\"findings\":{}}}",
        escape(&g.graph),
        g.nodes,
        g.configs,
        g.truncated,
        rules.join(","),
        overlaps.join(","),
        findings_json(&g.findings),
    )
}

fn audit_json(a: &RngAudit) -> String {
    format!(
        "{{\"runs\":{},\"steps\":{},\"select_draws\":{},\"apply_draws\":{},\
         \"guards_draws\":{},\"findings\":{}}}",
        a.runs,
        a.steps,
        a.select_draws,
        a.apply_draws,
        a.guards_draws,
        findings_json(&a.findings),
    )
}

fn family_json(f: &FamilyReport) -> String {
    let graphs: Vec<String> = f.graphs.iter().map(graph_json).collect();
    let skipped: Vec<String> = f
        .skipped
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    format!(
        "{{\"family\":\"{}\",\"certified\":{},\"analyzable\":{},\"errors\":{},\
         \"warnings\":{},\"skipped\":[{}],\"graphs\":[{}],\"audit\":{},\"hygiene\":{}}}",
        escape(&f.family),
        f.certified(),
        f.analyzable,
        f.error_count(),
        f.warning_count(),
        skipped.join(","),
        graphs.join(","),
        audit_json(&f.audit),
        findings_json(&f.hygiene),
    )
}

/// Renders the report in the stable `ssr-analysis/v1` schema: fixed
/// key order, no whitespace variance, trailing newline.
pub fn to_json(report: &AnalysisReport) -> String {
    let families: Vec<String> = report.families.iter().map(family_json).collect();
    format!(
        "{{\"schema\":\"{}\",\"certified\":{},\"families\":[{}]}}\n",
        SCHEMA,
        report.certified(),
        families.join(","),
    )
}

// ---------------------------------------------------------------------
// Human table
// ---------------------------------------------------------------------

/// A fixed-width summary table plus the full finding list — what the
/// `analyze` bin prints.
pub fn human_table(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let width = report
        .families
        .iter()
        .map(|f| f.family.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let _ = writeln!(
        out,
        "{:<width$}  {:>6}  {:>8}  {:>6}  {:>6}  {:>8}  verdict",
        "family", "graphs", "configs", "errors", "warns", "draws"
    );
    for f in &report.families {
        let configs: usize = f.graphs.iter().map(|g| g.configs).sum();
        let _ = writeln!(
            out,
            "{:<width$}  {:>6}  {:>8}  {:>6}  {:>6}  {:>8}  {}",
            f.family,
            f.graphs.len(),
            configs,
            f.error_count(),
            f.warning_count(),
            f.audit.select_draws,
            if f.certified() {
                "certified"
            } else {
                "VIOLATIONS"
            }
        );
    }
    let mut any = false;
    for f in &report.families {
        for finding in f.findings() {
            if !any {
                let _ = writeln!(out, "\nfindings:");
                any = true;
            }
            let _ = writeln!(
                out,
                "  [{}] {} ({}): {}",
                match finding.kind.severity() {
                    Severity::Error => "error",
                    Severity::Warning => "warn ",
                },
                finding.kind.code(),
                f.family,
                finding.detail
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------

use ssr_obs::json::{self, Value};

fn expect_num(v: &Value, key: &str, what: &str) -> Result<f64, String> {
    json::num_field(v, key, what)
}

fn expect_bool(v: &Value, key: &str, what: &str) -> Result<bool, String> {
    json::bool_field(v, key, what)
}

fn expect_str(v: &Value, key: &str, what: &str) -> Result<String, String> {
    json::str_field(v, key, what)
}

const FINDING_CODES: &[&str] = &[
    "non-local-guard",
    "non-local-action",
    "non-commutative",
    "dead-rule",
    "shadowed-rule",
    "no-op-rule",
    "overlapping-rules",
    "disabled-rule-fired",
    "foreign-write",
    "out-of-phase-draw",
    "not-analyzable",
];

fn check_findings(v: &Value, what: &str) -> Result<usize, String> {
    let arr = json::arr(v, what)?;
    for (i, f) in arr.iter().enumerate() {
        let fwhat = format!("{what}[{i}]");
        json::obj(f, &fwhat)?;
        let kind = expect_str(f, "kind", what)?;
        if !FINDING_CODES.contains(&kind.as_str()) {
            return Err(format!(
                "{what}[{i}].kind `{kind}` is not in the vocabulary"
            ));
        }
        let sev = expect_str(f, "severity", what)?;
        if sev != "error" && sev != "warning" {
            return Err(format!("{what}[{i}].severity must be error|warning"));
        }
        expect_str(f, "detail", what)?;
    }
    Ok(arr.len())
}

/// Validates `text` against the `ssr-analysis/v1` schema: structure,
/// key presence/types, the finding vocabulary, and the consistency of
/// the `certified` roll-ups with the findings they summarize. Returns
/// the number of families on success.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let root = json::parse(text)?;
    json::obj(&root, "document")?;
    let schema = expect_str(&root, "schema", "document")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let overall = expect_bool(&root, "certified", "document")?;
    let families = json::arr(json::field(&root, "families", "document")?, "families")?;
    let mut all_certified = true;
    for (i, fam) in families.iter().enumerate() {
        let what = format!("families[{i}]");
        json::obj(fam, &what)?;
        expect_str(fam, "family", &what)?;
        let certified = expect_bool(fam, "certified", &what)?;
        expect_bool(fam, "analyzable", &what)?;
        let errors = expect_num(fam, "errors", &what)?;
        expect_num(fam, "warnings", &what)?;
        json::arr(
            json::field(fam, "skipped", &what)?,
            &format!("{what}.skipped"),
        )?;
        if certified && errors != 0.0 {
            return Err(format!("{what} is certified but reports {errors} errors"));
        }
        all_certified &= certified;
        for (j, g) in json::arr(
            json::field(fam, "graphs", &what)?,
            &format!("{what}.graphs"),
        )?
        .iter()
        .enumerate()
        {
            let gwhat = format!("{what}.graphs[{j}]");
            json::obj(g, &gwhat)?;
            expect_str(g, "graph", &gwhat)?;
            expect_num(g, "nodes", &gwhat)?;
            expect_num(g, "configs", &gwhat)?;
            expect_bool(g, "truncated", &gwhat)?;
            for (k, r) in json::arr(json::field(g, "rules", &gwhat)?, &format!("{gwhat}.rules"))?
                .iter()
                .enumerate()
            {
                let rwhat = format!("{gwhat}.rules[{k}]");
                json::obj(r, &rwhat)?;
                expect_str(r, "name", &rwhat)?;
                for key in [
                    "enabled",
                    "fired_first",
                    "applies",
                    "changed",
                    "guard_read_dist_max",
                    "action_read_dist_max",
                    "guard_reads_max",
                    "action_reads_max",
                ] {
                    expect_num(r, key, &rwhat)?;
                }
            }
            check_findings(
                json::field(g, "findings", &gwhat)?,
                &format!("{gwhat}.findings"),
            )?;
        }
        let awhat = format!("{what}.audit");
        let audit = json::field(fam, "audit", &what)?;
        json::obj(audit, &awhat)?;
        for key in [
            "runs",
            "steps",
            "select_draws",
            "apply_draws",
            "guards_draws",
        ] {
            expect_num(audit, key, &awhat)?;
        }
        check_findings(
            json::field(audit, "findings", &awhat)?,
            &format!("{awhat}.findings"),
        )?;
        check_findings(
            json::field(fam, "hygiene", &what)?,
            &format!("{what}.hygiene"),
        )?;
    }
    if overall != all_certified {
        return Err("document `certified` disagrees with its families".to_string());
    }
    Ok(families.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_family, fixtures, AnalysisReport};
    use ssr_runtime::analysis::AnalyzeOptions;

    fn fixture_report() -> AnalysisReport {
        AnalysisReport {
            families: vec![
                analyze_family(&fixtures::FarSightFamily, &AnalyzeOptions::default()),
                analyze_family(&fixtures::ShadowedPairFamily, &AnalyzeOptions::default()),
            ],
        }
    }

    #[test]
    fn rendered_report_validates_round_trip() {
        let report = fixture_report();
        let json = to_json(&report);
        assert_eq!(validate_json(&json), Ok(2));
        assert!(json.starts_with("{\"schema\":\"ssr-analysis/v1\""));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"schema\":\"nope\",\"certified\":true,\"families\":[]}").is_err());
        assert!(validate_json("{\"schema\":\"ssr-analysis/v1\",\"certified\":true").is_err());
        // A certified family reporting errors is inconsistent.
        let bad = "{\"schema\":\"ssr-analysis/v1\",\"certified\":true,\"families\":[\
                   {\"family\":\"x\",\"certified\":true,\"analyzable\":true,\"errors\":2,\
                   \"warnings\":0,\"skipped\":[],\"graphs\":[],\"audit\":{\"runs\":0,\"steps\":0,\
                   \"select_draws\":0,\"apply_draws\":0,\"guards_draws\":0,\"findings\":[]},\
                   \"hygiene\":[]}]}";
        assert!(validate_json(bad).unwrap_err().contains("certified"));
    }

    #[test]
    fn validator_rejects_unknown_finding_kinds() {
        let bad = "{\"schema\":\"ssr-analysis/v1\",\"certified\":false,\"families\":[\
                   {\"family\":\"x\",\"certified\":false,\"analyzable\":true,\"errors\":1,\
                   \"warnings\":0,\"skipped\":[],\"graphs\":[],\"audit\":{\"runs\":0,\"steps\":0,\
                   \"select_draws\":0,\"apply_draws\":0,\"guards_draws\":0,\"findings\":[]},\
                   \"hygiene\":[{\"kind\":\"mystery\",\"severity\":\"error\",\"rule\":null,\
                   \"graph\":null,\"detail\":\"?\"}]}]}";
        assert!(validate_json(bad).unwrap_err().contains("vocabulary"));
    }

    #[test]
    fn human_table_names_every_family_and_verdict() {
        let report = fixture_report();
        let table = human_table(&report);
        assert!(table.contains("fixture-far-sight"));
        assert!(table.contains("fixture-shadowed-pair"));
        assert!(table.contains("VIOLATIONS"));
        assert!(table.contains("non-local-guard"));
        assert!(table.contains("shadowed-rule"));
    }
}
