//! `ssr-analyze` — mechanical certification of the soundness
//! obligations every registered family owes the step pipeline.
//!
//! The engine's fast paths are *conditionally* correct: incremental
//! guard re-evaluation assumes **locality**, the parallel kernels
//! assume **non-adjacent commutativity**, and deterministic intra-run
//! parallelism assumes **RNG discipline** (DESIGN.md §11). The
//! `ssr-runtime::analysis` instrumentation measures those properties;
//! this crate drives it over a registry:
//!
//! * [`analyze_family`] runs one family over the small-model
//!   [`analysis_suite`] — exhaustive footprint collection on the
//!   single-move closure of the family's seed set, a dynamic replay
//!   audit, and the cross-graph rule-table hygiene lints.
//! * [`analyze_registry`] does that for every label of a
//!   [`FamilyRegistry`], optionally on worker threads, with a
//!   deterministic merge (reports are byte-identical at any thread
//!   count).
//! * [`report`] renders/validates the stable `ANALYSIS.json` schema
//!   (`ssr-analysis/v1`) and a human table.
//! * [`fixtures`] provides planted-violation families — a non-local
//!   guard and a shadowed rule — that the analyzer must flag; the CI
//!   gate runs them as a self-test.
//!
//! # Examples
//!
//! ```
//! use ssr_analyze::{analyze_family, fixtures};
//! use ssr_runtime::{AnalyzeOptions, FindingKind};
//!
//! let report = analyze_family(&fixtures::FarSightFamily, &AnalyzeOptions::default());
//! assert!(!report.certified());
//! assert!(report
//!     .findings()
//!     .any(|f| f.kind == FindingKind::NonLocalGuard));
//! ```

#![forbid(unsafe_code)]

use ssr_graph::{generators, Graph};
use ssr_runtime::analysis::{
    AnalyzeOptions, Finding, FindingKind, GraphAnalysis, OverlapStat, RngAudit, RuleStats, Severity,
};
use ssr_runtime::family::{Family, FamilyRegistry};

pub mod fixtures;
pub mod report;

pub use report::{human_table, to_json, validate_json};
pub use ssr_runtime::analysis;

/// The schema identifier stamped into `ANALYSIS.json`.
pub const SCHEMA: &str = "ssr-analysis/v1";

/// The small-model graphs every family is certified on.
///
/// Chosen to keep exhaustive closures affordable while covering the
/// shapes the obligations care about: a path (distance-2 pairs with
/// a cut vertex), a ring (vertex-transitive, distance 2), a star
/// (hub/leaf asymmetry), and a clique (diameter 1, densest overlap
/// of neighborhoods — also what degree-hungry presets need).
pub fn analysis_suite() -> Vec<(&'static str, Graph)> {
    vec![
        ("path3", generators::path(3)),
        ("ring4", generators::ring(4)),
        ("star4", generators::star(4)),
        ("complete4", generators::complete(4)),
    ]
}

/// The full analysis of one family over the suite.
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// The family label the report belongs to.
    pub family: String,
    /// Whether the family exposed an analysis hook at all.
    pub analyzable: bool,
    /// Per-graph footprint analyses (instantiable suite graphs only).
    pub graphs: Vec<GraphAnalysis>,
    /// The merged dynamic audit across all analyzed graphs.
    pub audit: RngAudit,
    /// Cross-graph rule-table lints (dead/shadowed/no-op/overlapping).
    pub hygiene: Vec<Finding>,
    /// Suite graphs skipped because the family is not instantiable.
    pub skipped: Vec<String>,
}

impl FamilyReport {
    /// Every finding of the report, in deterministic order.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.graphs
            .iter()
            .flat_map(|g| g.findings.iter())
            .chain(self.audit.findings.iter())
            .chain(self.hygiene.iter())
    }

    /// Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings()
            .filter(|f| f.kind.severity() == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.findings()
            .filter(|f| f.kind.severity() == Severity::Warning)
            .count()
    }

    /// A family is certified iff the analysis ran and produced no
    /// error-severity finding. Warnings do not void certification.
    pub fn certified(&self) -> bool {
        self.analyzable && self.error_count() == 0
    }
}

/// The registry-wide analysis (what `ANALYSIS.json` serializes).
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// One report per registry label, in label order.
    pub families: Vec<FamilyReport>,
}

impl AnalysisReport {
    /// Whether every family certified clean.
    pub fn certified(&self) -> bool {
        self.families.iter().all(FamilyReport::certified)
    }
}

/// Analyzes one family over the [`analysis_suite`]: footprints and the
/// dynamic audit per instantiable graph, then the cross-graph hygiene
/// lints. A family without an analysis hook is reported as an
/// uncertifiable error, not skipped silently.
pub fn analyze_family(family: &dyn Family, opts: &AnalyzeOptions) -> FamilyReport {
    let label = family.label();
    let Some(hook) = family.analysis() else {
        return FamilyReport {
            family: label.clone(),
            analyzable: false,
            graphs: Vec::new(),
            audit: RngAudit::default(),
            hygiene: vec![Finding::new(
                FindingKind::NotAnalyzable,
                None,
                None,
                format!(
                    "family `{label}` has no `Family::analysis()` hook; its \
                     locality/commutativity/RNG obligations cannot be certified"
                ),
            )],
            skipped: Vec::new(),
        };
    };

    let mut graphs = Vec::new();
    let mut audit = RngAudit::default();
    let mut skipped = Vec::new();
    for (name, graph) in analysis_suite() {
        if !family.instantiable(&graph) {
            skipped.push(name.to_string());
            continue;
        }
        graphs.push(hook.footprints(&graph, name, opts));
        audit.merge(hook.audit(&graph, opts));
    }

    let mut hygiene = hygiene_lints(&graphs);
    if graphs.is_empty() {
        hygiene.push(Finding::new(
            FindingKind::NotAnalyzable,
            None,
            None,
            format!("family `{label}` is not instantiable on any suite graph"),
        ));
    }

    FamilyReport {
        family: label,
        analyzable: true,
        graphs,
        audit,
        hygiene,
        skipped,
    }
}

/// The rule-table lints, run on statistics aggregated across every
/// analyzed graph (a rule must be dead/shadowed *everywhere* to be
/// reported — per-graph deadness is expected, e.g. degree-dependent
/// guards).
fn hygiene_lints(graphs: &[GraphAnalysis]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(first) = graphs.first() else {
        return findings;
    };

    let mut rules: Vec<RuleStats> = first.rules.clone();
    for g in &graphs[1..] {
        for (agg, per) in rules.iter_mut().zip(&g.rules) {
            agg.merge(per);
        }
    }
    let mut overlaps: Vec<OverlapStat> = Vec::new();
    for g in graphs {
        for o in &g.overlaps {
            match overlaps.iter_mut().find(|m| m.a == o.a && m.b == o.b) {
                Some(m) => {
                    m.together += o.together;
                    m.identical += o.identical;
                }
                None => overlaps.push(o.clone()),
            }
        }
    }
    overlaps.sort_unstable_by_key(|o| (o.a, o.b));

    for (idx, r) in rules.iter().enumerate() {
        if r.enabled == 0 {
            findings.push(Finding::new(
                FindingKind::DeadRule,
                Some(r.name.clone()),
                None,
                format!(
                    "rule {idx} `{}` was never enabled in any explored \
                     configuration — widen the seed set or remove the rule",
                    r.name
                ),
            ));
        } else if r.fired_first == 0 {
            findings.push(Finding::new(
                FindingKind::ShadowedRule,
                Some(r.name.clone()),
                None,
                format!(
                    "rule {idx} `{}` was enabled {} times but never as the \
                     lowest-index rule — it can never fire under the default \
                     resolution; reorder it below the rule shadowing it",
                    r.name, r.enabled
                ),
            ));
        }
        if r.applies > 0 && r.changed == 0 {
            findings.push(Finding::new(
                FindingKind::NoOpRule,
                Some(r.name.clone()),
                None,
                format!(
                    "rule {idx} `{}` was applied {} times and never changed the \
                     state — its guard should imply a state change",
                    r.name, r.applies
                ),
            ));
        }
    }
    for o in &overlaps {
        if o.together > 0 && o.identical == o.together {
            let (a, b) = (&rules[o.a].name, &rules[o.b].name);
            findings.push(Finding::new(
                FindingKind::OverlappingRules,
                Some(b.clone()),
                None,
                format!(
                    "rules `{a}` and `{b}` were co-enabled {} times, always \
                     with identical next states — one of them is redundant",
                    o.together
                ),
            ));
        }
    }
    findings
}

/// Analyzes every label of `registry` on up to `threads` workers.
///
/// Work is partitioned by label index and merged back in label order,
/// so the report — and its JSON rendering — is byte-identical at any
/// thread count. A label that fails to resolve is reported as an
/// unanalyzable family (it should be impossible for a well-formed
/// registry, and must fail the gate loudly rather than vanish).
pub fn analyze_registry(
    registry: &FamilyRegistry,
    opts: &AnalyzeOptions,
    threads: usize,
) -> AnalysisReport {
    let labels = registry.labels();
    let threads = threads.clamp(1, labels.len().max(1));
    let one = |label: &str| -> FamilyReport {
        match registry.resolve_label(label) {
            Some(family) => analyze_family(family.as_ref(), opts),
            None => FamilyReport {
                family: label.to_string(),
                analyzable: false,
                graphs: Vec::new(),
                audit: RngAudit::default(),
                hygiene: vec![Finding::new(
                    FindingKind::NotAnalyzable,
                    None,
                    None,
                    format!("label `{label}` did not resolve in the registry"),
                )],
                skipped: Vec::new(),
            },
        }
    };

    let mut reports: Vec<Option<FamilyReport>> = (0..labels.len()).map(|_| None).collect();
    if threads <= 1 {
        for (i, label) in labels.iter().enumerate() {
            reports[i] = Some(one(label));
        }
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let labels = &labels;
                let one = &one;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < labels.len() {
                        out.push((i, one(&labels[i])));
                        i += threads;
                    }
                    out
                }));
            }
            for h in handles {
                for (i, r) in h.join().expect("analysis worker panicked") {
                    reports[i] = Some(r);
                }
            }
        });
    }
    AnalysisReport {
        families: reports
            .into_iter()
            .map(|r| r.expect("every label analyzed"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn suite_graphs_are_small_and_named_uniquely() {
        let suite = analysis_suite();
        let mut names: Vec<_> = suite.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        assert!(suite.iter().all(|(_, g)| g.node_count() <= 4));
    }

    #[test]
    fn unanalyzable_family_is_an_error() {
        struct Opaque;
        impl Family for Opaque {
            fn id(&self) -> &str {
                "opaque"
            }
            fn run(
                &self,
                _: &Graph,
                _: &ssr_runtime::InitPlan,
                _: &ssr_runtime::Daemon,
                _: ssr_runtime::RunSeeds,
                _: ssr_runtime::ExecBudget,
                _: Option<&mut dyn ssr_runtime::FamilyProbe>,
            ) -> ssr_runtime::FamilyRunOutcome {
                unimplemented!("never run here")
            }
        }
        let report = analyze_family(&Opaque, &AnalyzeOptions::default());
        assert!(!report.certified());
        assert!(report
            .findings()
            .any(|f| f.kind == FindingKind::NotAnalyzable));
    }

    #[test]
    fn registry_report_preserves_label_order_and_thread_invariance() {
        let mut reg = FamilyRegistry::new();
        reg.register(Arc::new(fixtures::FarSightFamily));
        reg.register(Arc::new(fixtures::ShadowedPairFamily));
        let opts = AnalyzeOptions::default();
        let seq = analyze_registry(&reg, &opts, 1);
        let par = analyze_registry(&reg, &opts, 4);
        assert_eq!(
            seq.families.iter().map(|f| &f.family).collect::<Vec<_>>(),
            vec!["fixture-far-sight", "fixture-shadowed-pair"]
        );
        assert_eq!(report::to_json(&seq), report::to_json(&par));
        assert!(!seq.certified());
    }
}
