//! Steps-per-second scaling of the staged pipeline with network size
//! and intra-run thread count: `n ∈ {10³, 10⁴, 10⁵, 10⁶}` ring, SDR
//! composition, synchronous daemon.
//!
//! Each measured routine drives a fixed number of steps from the same
//! adversarial configuration, so samples are comparable across thread
//! counts; the harness's per-bench budget keeps the 10⁶ points from
//! dominating wall-clock time. The `scale` binary
//! (`cargo run -p ssr-bench --bin scale --release`) runs the same
//! sweep to convergence and writes `BENCH_SCALE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssr_core::toys::Agreement;
use ssr_core::Sdr;
use ssr_graph::{generators, Graph};
use ssr_runtime::{Daemon, Simulator, StepOutcome};

fn run_steps(g: &Graph, threads: usize, steps: u64) -> u64 {
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0x5CA1E);
    let mut sim = Simulator::new(g, algo, init, Daemon::Synchronous, 11);
    sim.set_intra_threads(threads);
    for _ in 0..steps {
        if let StepOutcome::Terminal = sim.step() {
            break;
        }
    }
    sim.stats().moves
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        // Fewer steps at the big sizes: one sample must fit the budget.
        let steps = if n >= 1_000_000 {
            3
        } else if n >= 100_000 {
            10
        } else {
            50
        };
        let g = generators::ring(n);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("ring-{n}"), threads),
                &threads,
                |b, &threads| b.iter(|| run_steps(&g, threads, steps)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
