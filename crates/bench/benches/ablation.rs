//! E10 wall-clock: cooperative resets (`U ∘ SDR`) vs uncoordinated
//! local resets (CFG) repairing a clock tear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_baselines::CfgUnison;
use ssr_bench::workloads::{unison_tear, unison_tear_plain};
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator};
use ssr_unison::{spec, unison_sdr, Unison};

// Paths, not rings: on cycles the CFG baseline's reset waves chase
// each other for tens of millions of moves (see E10 in EXPERIMENTS.md),
// which is a finding to record once, not a benchmark to repeat. The
// one-shot ring comparison lives in the `experiments` binary.
fn tear_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("tear_repair");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::new("sdr", n), &n, |b, _| {
            b.iter(|| {
                let algo = unison_sdr(Unison::for_graph(&g));
                let k = algo.input().period();
                let init = unison_tear(&g, k, n as u64 / 2);
                let check = unison_sdr(Unison::for_graph(&g));
                let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 5);
                let out = sim
                    .execution()
                    .cap(50_000_000)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
        group.bench_with_input(BenchmarkId::new("cfg", n), &n, |b, _| {
            b.iter(|| {
                let algo = CfgUnison::for_graph(&g);
                let k = algo.period();
                let init = unison_tear_plain(&g, k, n as u64 / 2);
                let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 5);
                let out = sim
                    .execution()
                    .cap(50_000_000)
                    .until(|gr, st| spec::safety_holds(gr, st, k))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, tear_repair);
criterion_main!(benches);
