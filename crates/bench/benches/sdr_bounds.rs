//! E1/E2 wall-clock: pure-SDR recovery (over the rule-less Agreement
//! input) from adversarial configurations, across sizes and daemons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_core::{toys::Agreement, Sdr};
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator};

fn sdr_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdr_recovery");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let g = generators::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| {
                let sdr = Sdr::new(Agreement::new(8));
                let init = sdr.arbitrary_config(&g, 0xBE7C);
                let check = Sdr::new(Agreement::new(8));
                let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, 11);
                let out = sim
                    .execution()
                    .cap(10_000_000)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
    }
    group.finish();
}

fn sdr_daemons(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdr_daemons");
    group.sample_size(10);
    let g = generators::random_connected(32, 24, 3);
    for daemon in [
        Daemon::Synchronous,
        Daemon::Central,
        Daemon::RandomSubset { p: 0.5 },
        Daemon::PreferHighRules,
    ] {
        group.bench_with_input(
            BenchmarkId::new("daemon", daemon.label()),
            &daemon,
            |b, daemon| {
                b.iter(|| {
                    let sdr = Sdr::new(Agreement::new(8));
                    let init = sdr.arbitrary_config(&g, 0xD43);
                    let check = Sdr::new(Agreement::new(8));
                    let mut sim = Simulator::new(&g, sdr, init, daemon.clone(), 7);
                    let out = sim
                        .execution()
                        .cap(10_000_000)
                        .until(|gr, st| check.is_normal_config(gr, st))
                        .run();
                    assert!(out.reached);
                    black_box(out.rounds_at_hit)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sdr_recovery, sdr_daemons);
criterion_main!(benches);
