//! Wall-clock benches for the staged step pipeline itself: the
//! select → apply → guard-refresh phases at different intra-run thread
//! counts, and the cost of the optional conflict-partition diagnostic.
//!
//! The workload is the composed `Agreement ∘ SDR` family on a ring —
//! small constant-degree neighborhoods, so the kernels (not the cache)
//! dominate — under the synchronous daemon, which maximizes the
//! per-step selection and therefore the work the apply/guard kernels
//! can fan out. `main` additionally runs an explicit byte-identity
//! tripwire: the parallel pipeline must reproduce the sequential run
//! exactly, state for state and stat for stat.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ssr_core::toys::Agreement;
use ssr_core::Sdr;
use ssr_graph::{generators, Graph};
use ssr_runtime::{Daemon, Simulator, StepOutcome};

const N: usize = 20_000;
const STEPS: u64 = 10;

fn sim_for(g: &Graph, threads: usize) -> Simulator<'_, Sdr<Agreement>> {
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0xA57);
    let mut sim = Simulator::new(g, algo, init, Daemon::Synchronous, 9);
    if threads > 1 {
        sim.set_intra_threads(threads);
    }
    sim
}

fn run_steps(g: &Graph, threads: usize, conflict_stats: bool) -> (u64, Vec<u64>) {
    let mut sim = sim_for(g, threads);
    sim.set_conflict_stats(conflict_stats);
    let mut classes = Vec::new();
    for _ in 0..STEPS {
        if let StepOutcome::Terminal = sim.step() {
            break;
        }
        if let Some(c) = sim.last_conflict_classes() {
            classes.push(u64::from(c));
        }
    }
    (sim.stats().moves, classes)
}

fn bench_step_pipeline(c: &mut Criterion) {
    let g = generators::ring(N);
    let mut group = c.benchmark_group("step_pipeline");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| run_steps(&g, threads, false)),
        );
    }
    group.bench_function(BenchmarkId::from_parameter("conflict-stats"), |b| {
        b.iter(|| run_steps(&g, 1, true))
    });
    group.finish();
}

/// The determinism tripwire: at every thread count the pipeline must
/// produce byte-identical configurations, stats, and daemon state.
fn byte_identity_check() {
    let g = generators::ring(2_500);
    let run = |threads: usize| {
        let mut sim = sim_for(&g, threads);
        // Force the parallel dispatch even for sub-threshold phases so
        // the check exercises the kernels, not the sequential fallback.
        sim.set_par_threshold(0);
        for _ in 0..40 {
            if let StepOutcome::Terminal = sim.step() {
                break;
            }
        }
        (sim.states().to_vec(), sim.stats().clone())
    };
    let baseline = run(1);
    for threads in [2, 4, 8] {
        assert!(
            run(threads) == baseline,
            "parallel step pipeline diverged from sequential at {threads} threads"
        );
    }
    println!("step_pipeline/byte-identity: threads 2/4/8 match sequential");
}

criterion_group!(benches, bench_step_pipeline);

fn main() {
    benches();
    byte_identity_check();
}
