//! Frontier throughput of the exhaustive explorer: distinct states
//! interned per second over the tiny-suite workloads, sequential vs
//! parallel frontier expansion.
//!
//! Besides the criterion groups, `main` prints an explicit states/sec
//! figure per workload (the vendored criterion subset has no
//! throughput reporting) and sanity-checks that the parallel frontier
//! returns byte-identical results.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ssr_core::{toys::Agreement, Sdr};
use ssr_explore::{explore, Exploration, ExploreOptions};
use ssr_graph::{generators, Graph};
use ssr_unison::{unison_sdr, Unison};

fn sdr_workload(g: &Graph, threads: usize) -> Exploration<ssr_core::Composed<u32>> {
    let sdr = Sdr::new(Agreement::new(2));
    let check = Sdr::new(Agreement::new(2));
    let inits: Vec<_> = (0..6).map(|s| sdr.arbitrary_config(g, s)).collect();
    explore(
        g,
        &sdr,
        &inits,
        |gr, st| check.is_normal_config(gr, st),
        &ExploreOptions {
            threads,
            ..ExploreOptions::default()
        },
    )
    .expect("tiny workload fits the limits")
}

fn unison_workload(g: &Graph, threads: usize) -> Exploration<ssr_core::Composed<u64>> {
    let algo = unison_sdr(Unison::for_graph(g));
    let check = unison_sdr(Unison::for_graph(g));
    let inits: Vec<_> = (0..6).map(|s| algo.arbitrary_config(g, s)).collect();
    explore(
        g,
        &algo,
        &inits,
        |gr, st| check.is_normal_config(gr, st),
        &ExploreOptions {
            threads,
            ..ExploreOptions::default()
        },
    )
    .expect("tiny workload fits the limits")
}

fn bench_explore(c: &mut Criterion) {
    let path = generators::path(6);
    let wheel = generators::wheel(6);
    let mut group = c.benchmark_group("explore_frontier");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sdr-path6", "1-thread"), |b| {
        b.iter(|| sdr_workload(&path, 1))
    });
    group.bench_function(BenchmarkId::new("sdr-path6", "4-threads"), |b| {
        b.iter(|| sdr_workload(&path, 4))
    });
    group.bench_function(BenchmarkId::new("unison-wheel6", "1-thread"), |b| {
        b.iter(|| unison_workload(&wheel, 1))
    });
    group.bench_function(BenchmarkId::new("unison-wheel6", "4-threads"), |b| {
        b.iter(|| unison_workload(&wheel, 4))
    });
    group.finish();
}

/// A workload runner: threads in, (states, transitions) out.
type Workload<'a> = &'a dyn Fn(usize) -> (usize, usize);

/// Prints states/sec per workload and pins parallel determinism.
fn throughput_check() {
    let path = generators::path(6);
    let wheel = generators::wheel(6);
    let runs: [(&str, Workload<'_>); 2] = [
        ("sdr-path6", &|t| {
            let ex = sdr_workload(&path, t);
            (ex.states, ex.transitions)
        }),
        ("unison-wheel6", &|t| {
            let ex = unison_workload(&wheel, t);
            (ex.states, ex.transitions)
        }),
    ];
    for (label, run) in runs {
        let t = Instant::now();
        let (states, transitions) = run(1);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "explore/{label}: {states} states, {transitions} transitions, \
             {:.0} states/sec sequential",
            states as f64 / secs
        );
        assert_eq!((states, transitions), run(4), "parallel must be identical");
    }
}

criterion_group!(benches, bench_explore);

fn main() {
    benches();
    throughput_check();
}
