//! E4/E5 wall-clock: self-stabilizing unison stabilization, `U ∘ SDR`
//! versus the CFG baseline on identical instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_baselines::CfgUnison;
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator};
use ssr_unison::{spec, unison_sdr, Unison};

fn unison_sdr_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("unison_sdr");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let g = generators::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| {
                let algo = unison_sdr(Unison::for_graph(&g));
                let init = algo.arbitrary_config(&g, 0xE45);
                let check = unison_sdr(Unison::for_graph(&g));
                let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 5);
                let out = sim
                    .execution()
                    .cap(50_000_000)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
    }
    group.finish();
}

fn unison_cfg_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("unison_cfg_baseline");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let g = generators::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| {
                let algo = CfgUnison::for_graph(&g);
                let k = algo.period();
                let init = algo.arbitrary_config(&g, 0xE45);
                let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 5);
                let out = sim
                    .execution()
                    .cap(50_000_000)
                    .until(|gr, st| spec::safety_holds(gr, st, k))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, unison_sdr_stabilization, unison_cfg_stabilization);
criterion_main!(benches);
