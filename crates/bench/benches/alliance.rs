//! E7/E8 wall-clock: FGA from `γ_init` and `FGA ∘ SDR` from arbitrary
//! configurations, per preset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_alliance::{fga_sdr, presets};
use ssr_core::Standalone;
use ssr_graph::generators;
use ssr_runtime::{Daemon, Simulator};

fn fga_standalone(c: &mut Criterion) {
    let mut group = c.benchmark_group("fga_standalone");
    group.sample_size(10);
    let g = generators::random_connected(32, 32, 0xA5);
    for (label, _) in presets::all_presets(&g) {
        group.bench_with_input(BenchmarkId::new("preset", label), &label, |b, _| {
            b.iter(|| {
                let fga = presets::all_presets(&g)
                    .into_iter()
                    .find(|(l, _)| *l == label)
                    .expect("preset exists")
                    .1;
                let alg = Standalone::new(fga);
                let init = alg.initial_config(&g);
                let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.5 }, 3);
                let out = sim.execution().cap(50_000_000).run();
                assert!(out.terminal);
                black_box(sim.stats().moves)
            })
        });
    }
    group.finish();
}

fn fga_sdr_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fga_sdr");
    group.sample_size(10);
    for n in [12usize, 24, 48] {
        let g = generators::random_connected(n, n, 0xA6);
        group.bench_with_input(BenchmarkId::new("domination", n), &n, |b, _| {
            b.iter(|| {
                let fga = presets::domination(&g).expect("valid");
                let algo = fga_sdr(fga);
                let init = algo.arbitrary_config(&g, 0xFEED);
                let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 7);
                let out = sim.execution().cap(100_000_000).run();
                assert!(out.terminal);
                black_box(sim.stats().moves)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fga_standalone, fga_sdr_stabilization);
criterion_main!(benches);
