//! Micro-bench: the step pipeline with observability channels off vs
//! on — the `ssr-obs` zero-cost claim.
//!
//! Three variants of the identical workload (standalone FGA domination
//! on a fixed random graph, driven to termination):
//!
//! * **bare** — no trace sink installed; the per-step emit macro short
//!   circuits on `self.trace.is_none()`.
//! * **no-op sink** — [`NoTrace`] installed, so every event is built
//!   and immediately discarded; measures the event-construction cost.
//! * **metrics sink** — [`PipelineMetrics::without_timing`], the
//!   deterministic counter/histogram accumulation used by `--metrics`.
//!
//! Besides the criterion groups, `main` runs an explicit check (the
//! `exec_overhead` tripwire pattern) asserting both instrumented paths
//! stay within a small factor of the bare loop — observability must
//! not tax the pipeline when enabled, and must cost *nothing* when
//! disabled.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ssr_alliance::presets;
use ssr_core::Standalone;
use ssr_graph::{generators, Graph};
use ssr_obs::pipeline::PipelineMetrics;
use ssr_runtime::trace::{NoTrace, TraceSink};
use ssr_runtime::{Daemon, Simulator, StepOutcome};

const CAP: u64 = 1_000_000;

fn workload() -> (Graph, ssr_alliance::Fga) {
    let g = generators::random_connected(64, 48, 9);
    let fga = presets::domination(&g).expect("domination is always valid");
    (g, fga)
}

fn run(g: &Graph, fga: &ssr_alliance::Fga, sink: Option<Box<dyn TraceSink>>) -> u64 {
    let alg = Standalone::new(fga.clone());
    let init = alg.initial_config(g);
    let mut sim = Simulator::new(g, alg, init, Daemon::Central, 7);
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    let mut steps = 0u64;
    while steps < CAP {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => steps += 1,
        }
    }
    sim.stats().moves
}

fn bare(g: &Graph, fga: &ssr_alliance::Fga) -> u64 {
    run(g, fga, None)
}

fn noop_sink(g: &Graph, fga: &ssr_alliance::Fga) -> u64 {
    run(g, fga, Some(Box::new(NoTrace)))
}

fn metrics_sink(g: &Graph, fga: &ssr_alliance::Fga) -> u64 {
    run(g, fga, Some(Box::new(PipelineMetrics::without_timing())))
}

fn bench_obs_overhead(c: &mut Criterion) {
    let (g, fga) = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(30);
    group.bench_function(BenchmarkId::from_parameter("bare-step-loop"), |b| {
        b.iter(|| bare(&g, &fga))
    });
    group.bench_function(BenchmarkId::from_parameter("no-op-trace-sink"), |b| {
        b.iter(|| noop_sink(&g, &fga))
    });
    group.bench_function(BenchmarkId::from_parameter("metrics-sink"), |b| {
        b.iter(|| metrics_sink(&g, &fga))
    });
    group.finish();
}

/// Times all three paths directly and asserts the instrumented loops
/// are not measurably slower than the bare one (generous 1.5× tripwire
/// over medians; all three should be within noise of each other).
fn overhead_check() {
    let (g, fga) = workload();
    assert_eq!(bare(&g, &fga), noop_sink(&g, &fga));
    assert_eq!(bare(&g, &fga), metrics_sink(&g, &fga));
    let medianize = |f: &dyn Fn() -> u64| {
        let mut samples: Vec<u128> = (0..15)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    // Warm all paths once, then interleave-measure.
    bare(&g, &fga);
    noop_sink(&g, &fga);
    metrics_sink(&g, &fga);
    let base = medianize(&|| bare(&g, &fga));
    let noop = medianize(&|| noop_sink(&g, &fga));
    let metrics = medianize(&|| metrics_sink(&g, &fga));
    let noop_ratio = noop as f64 / base as f64;
    let metrics_ratio = metrics as f64 / base as f64;
    println!(
        "obs_overhead/check: bare {base}ns, no-op sink {noop}ns (ratio {noop_ratio:.3}), \
         metrics sink {metrics}ns (ratio {metrics_ratio:.3})"
    );
    assert!(
        noop_ratio < 1.5,
        "a no-op trace sink must not add measurable overhead \
         (bare {base}ns vs no-op {noop}ns, ratio {noop_ratio:.3})"
    );
    assert!(
        metrics_ratio < 1.5,
        "untimed metrics accumulation must stay within noise of the bare loop \
         (bare {base}ns vs metrics {metrics}ns, ratio {metrics_ratio:.3})"
    );
}

criterion_group!(benches, bench_obs_overhead);

fn main() {
    benches();
    overhead_check();
}
