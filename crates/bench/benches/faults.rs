//! E11 wall-clock: recovery of `U ∘ SDR` from k corrupted clocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_graph::generators;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Daemon, Simulator};
use ssr_unison::{unison_sdr, Unison};

fn fault_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(10);
    let n = 32usize;
    let g = generators::ring(n);
    for k in [1usize, 4, 16, 32] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let algo = unison_sdr(Unison::for_graph(&g));
                let period = algo.input().period();
                let check = unison_sdr(Unison::for_graph(&g));
                let init = algo.initial_config(&g);
                let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 1);
                sim.execution().cap(5 * n as u64).run();
                let mut rng = Xoshiro256StarStar::seed_from_u64(k as u64);
                let victims: Vec<_> = g.nodes().take(k).collect();
                for u in victims {
                    let mut s = *sim.state(u);
                    s.inner = rng.below(period);
                    sim.inject(u, s);
                }
                sim.reset_stats();
                let out = sim
                    .execution()
                    .cap(50_000_000)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                assert!(out.reached);
                black_box(out.moves_at_hit)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fault_recovery);
criterion_main!(benches);
