//! Micro-bench: the `Execution` path with a no-op observer vs the raw
//! `sim.step()` loop — the redesign's zero-cost claim.
//!
//! Both sides run the identical workload (standalone FGA domination on
//! a fixed random graph, driven to termination), so any gap is pure
//! harness overhead. Besides the criterion groups, `main` runs an
//! explicit check asserting the `Execution` path stays within a small
//! factor of the raw loop — a tripwire for gross regressions, with
//! enough slack to stay robust on noisy machines.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ssr_alliance::presets;
use ssr_core::Standalone;
use ssr_graph::{generators, Graph};
use ssr_runtime::{Daemon, Simulator, StepOutcome};

const CAP: u64 = 1_000_000;

fn workload() -> (Graph, ssr_alliance::Fga) {
    let g = generators::random_connected(64, 48, 9);
    let fga = presets::domination(&g).expect("domination is always valid");
    (g, fga)
}

fn raw_loop(g: &Graph, fga: &ssr_alliance::Fga) -> u64 {
    let alg = Standalone::new(fga.clone());
    let init = alg.initial_config(g);
    let mut sim = Simulator::new(g, alg, init, Daemon::Central, 7);
    let mut steps = 0u64;
    while steps < CAP {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => steps += 1,
        }
    }
    sim.stats().moves
}

fn execution_noop(g: &Graph, fga: &ssr_alliance::Fga) -> u64 {
    let alg = Standalone::new(fga.clone());
    let init = alg.initial_config(g);
    let mut sim = Simulator::new(g, alg, init, Daemon::Central, 7);
    sim.execution().cap(CAP).run();
    sim.stats().moves
}

fn bench_exec_overhead(c: &mut Criterion) {
    let (g, fga) = workload();
    let mut group = c.benchmark_group("exec_overhead");
    group.sample_size(30);
    group.bench_function(BenchmarkId::from_parameter("raw-step-loop"), |b| {
        b.iter(|| raw_loop(&g, &fga))
    });
    group.bench_function(
        BenchmarkId::from_parameter("execution-noop-observer"),
        |b| b.iter(|| execution_noop(&g, &fga)),
    );
    group.finish();
}

/// Times both paths directly and asserts the no-op-observer execution
/// is not measurably slower than the raw loop (generous 1.5× tripwire
/// over medians; the two should be within noise of each other).
fn overhead_check() {
    let (g, fga) = workload();
    assert_eq!(raw_loop(&g, &fga), execution_noop(&g, &fga));
    let medianize = |f: &dyn Fn() -> u64| {
        let mut samples: Vec<u128> = (0..15)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    // Warm both paths once, then interleave-measure.
    raw_loop(&g, &fga);
    execution_noop(&g, &fga);
    let raw = medianize(&|| raw_loop(&g, &fga));
    let exec = medianize(&|| execution_noop(&g, &fga));
    let ratio = exec as f64 / raw as f64;
    println!("exec_overhead/check: raw {raw}ns, execution {exec}ns, ratio {ratio:.3}");
    assert!(
        ratio < 1.5,
        "no-op-observer Execution must not add measurable overhead \
         (raw {raw}ns vs execution {exec}ns, ratio {ratio:.3})"
    );
}

criterion_group!(benches, bench_exec_overhead);

fn main() {
    benches();
    overhead_check();
}
