//! End-to-end exit-code contract of the `report` bin: `record` builds
//! a history store from scale sweeps, `check` passes on a steady
//! history and exits nonzero once an entry degrades past the tolerance
//! bands — the CI tripwire this PR exists for. Runs the real binaries
//! via `CARGO_BIN_EXE_*`.

use std::path::PathBuf;
use std::process::{Command, Output};

/// One `bench-scale-v2` cell, enough for a single-cell history entry.
const SCALE_JSON: &str = r#"{
  "schema": "bench-scale-v2",
  "smoke": true,
  "runs": [
    {"topology":"ring","n":1000,"threads":4,"steps":11,"moves":2894,"rounds":11,"seconds":0.0003,"steps_per_sec":34582.7,"moves_per_sec":9098397.2,"converged":true,"conflict_classes_avg":2.00,"soa_heap_bytes":9216,"phase_nanos":{"select":7038,"apply":44996,"guards":252129},"kernel_par_steps":{"apply":0,"guards":2}}
  ]
}
"#;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssr-report-cli-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_report"))
        .args(args)
        .output()
        .expect("spawn report bin")
}

fn obs_validate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs_validate"))
        .args(args)
        .output()
        .expect("spawn obs_validate bin")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn check_trips_on_degraded_entry() {
    let dir = scratch("tripwire");
    let scale = dir.join("BENCH_SCALE.json");
    let history = dir.join("BENCH_HISTORY.jsonl");
    std::fs::write(&scale, SCALE_JSON).expect("write scale fixture");
    let scale_s = scale.to_str().expect("utf8 path");
    let history_s = history.to_str().expect("utf8 path");

    // Two identical sweeps: a baseline and a steady current.
    for sha in ["aaa111", "bbb222"] {
        let out = report(&[
            "record",
            "--scale",
            scale_s,
            "--history",
            history_s,
            "--sha",
            sha,
            "--host",
            "test-host",
        ]);
        assert!(out.status.success(), "record {sha}: {}", stderr_of(&out));
    }
    let out = report(&["check", "--history", history_s]);
    assert!(
        out.status.success(),
        "identical entries must pass: {}",
        stderr_of(&out)
    );

    // A degraded third entry: throughput halved, apply phase doubled —
    // well past the default 15%/25% bands.
    let text = std::fs::read_to_string(&history).expect("read history");
    let mut entries = ssr_report::history::parse_history_jsonl(&text).expect("parse history");
    let mut bad = entries.pop().expect("two entries recorded");
    bad.sha = "ccc333".into();
    for cell in &mut bad.cells {
        cell.steps_per_sec *= 0.5;
        cell.moves_per_sec *= 0.5;
        cell.phase_apply_nanos *= 2;
    }
    let mut text = std::fs::read_to_string(&history).expect("read history");
    text.push_str(&ssr_report::history::entry_to_json_line(&bad));
    text.push('\n');
    std::fs::write(&history, text).expect("append degraded entry");

    let out = report(&["check", "--history", history_s]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "degraded entry must trip the gate: {}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("REGRESSION"), "stderr: {err}");
    assert!(err.contains("steps_per_sec"), "stderr: {err}");
    assert!(err.contains("phase_apply_nanos"), "stderr: {err}");

    // Explicit baseline selection trips the same way; a generous
    // tolerance clears the throughput band but not the doubled phase.
    let out = report(&["check", "--history", history_s, "--baseline", "bbb222"]);
    assert_eq!(out.status.code(), Some(1));
    let out = report(&[
        "check",
        "--history",
        history_s,
        "--throughput-tol",
        "0.9",
        "--phase-tol",
        "2.0",
    ]);
    assert!(
        out.status.success(),
        "loose tolerances must pass: {}",
        stderr_of(&out)
    );

    // The store the gate just read validates as ssr-history/v1.
    let out = obs_validate(&["--kind", "history", history_s]);
    assert!(out.status.success(), "{}", stderr_of(&out));
}

#[test]
fn record_requires_explicit_identity() {
    let dir = scratch("identity");
    let scale = dir.join("BENCH_SCALE.json");
    std::fs::write(&scale, SCALE_JSON).expect("write scale fixture");
    let out = report(&[
        "record",
        "--scale",
        scale.to_str().expect("utf8 path"),
        "--history",
        dir.join("h.jsonl").to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(2), "missing --sha is a usage error");
    assert!(stderr_of(&out).contains("--sha"));
}

#[test]
fn check_needs_two_entries() {
    let dir = scratch("short");
    let scale = dir.join("BENCH_SCALE.json");
    let history = dir.join("BENCH_HISTORY.jsonl");
    std::fs::write(&scale, SCALE_JSON).expect("write scale fixture");
    let out = report(&[
        "record",
        "--scale",
        scale.to_str().expect("utf8 path"),
        "--history",
        history.to_str().expect("utf8 path"),
        "--sha",
        "aaa111",
        "--host",
        "test-host",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = report(&["check", "--history", history.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("baseline"));
}
