//! Byte-compatibility pin for the family-registry redesign.
//!
//! The golden files under `tests/golden/` were captured from the
//! pre-registry implementation (the closed `AlgorithmSpec` enum and
//! the per-family `run_scenario` match). This test regenerates the
//! same surfaces through the registry path and demands **byte
//! identity** — labels, columns, and values — at `--threads 1` and
//! `--threads 4` alike:
//!
//! * the full quick-profile experiment tables (`tables_quick.md`,
//!   what the binary prints);
//! * the quick `BENCH_RESULTS.json` document
//!   (`bench_results_quick.json`);
//! * a mixed-family campaign's JSONL and CSV (`campaign.jsonl` /
//!   `campaign.csv`: all six original families × four init plans ×
//!   two daemons on three topologies).
//!
//! If a change legitimately alters experiment output, regenerate the
//! goldens with the commands in each constant's doc and say so in the
//! PR.

use ssr_bench::ctx::ExpCtx;
use ssr_bench::experiments::{self, Profile};
use ssr_campaign::{
    engine, families, output, Amount, Campaign, InitPlan, PresetSpec, TopologySpec,
};
use ssr_runtime::Daemon;

/// `cargo run -p ssr-bench --bin experiments --release -- --quick --threads 2`
const GOLDEN_TABLES: &str = include_str!("golden/tables_quick.md");
/// `… --quick --threads 2 --format json --out …`
const GOLDEN_RESULTS: &str = include_str!("golden/bench_results_quick.json");
/// The fixed mixed-family campaign below, serialized as JSONL.
const GOLDEN_JSONL: &str = include_str!("golden/campaign.jsonl");
/// The fixed mixed-family campaign below, serialized as CSV.
const GOLDEN_CSV: &str = include_str!("golden/campaign.csv");

/// The campaign whose records the JSONL/CSV goldens pin: every family
/// of the original closed enum, every init plan, two daemons, mixed
/// topologies/sizes.
fn golden_campaign() -> Campaign {
    Campaign::new("golden-compat")
        .topologies(vec![
            TopologySpec::Ring,
            TopologySpec::Star,
            TopologySpec::RandSparse,
        ])
        .sizes(vec![6, 9])
        .algorithms(vec![
            families::sdr_agreement(4),
            families::unison_sdr(),
            families::cfg_unison(),
            families::mono_reset(),
            families::fga_sdr(PresetSpec::Domination),
            families::fga_standalone(PresetSpec::Defensive),
        ])
        .daemons(vec![Daemon::Central, Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear { gap: Amount::HalfN },
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ])
        .trials(1)
        .step_cap(2_000_000)
        .seed(0x601D)
}

#[test]
fn campaign_jsonl_and_csv_are_byte_identical_pre_and_post_redesign() {
    let campaign = golden_campaign();
    for threads in [1, 4] {
        let records = engine::run(&campaign, threads);
        assert_eq!(
            output::jsonl(&records),
            GOLDEN_JSONL,
            "JSONL drifted from the pre-redesign golden (threads={threads})"
        );
        assert_eq!(
            output::csv(&records),
            GOLDEN_CSV,
            "CSV drifted from the pre-redesign golden (threads={threads})"
        );
    }
}

#[test]
fn quick_experiment_tables_and_results_are_byte_identical() {
    for threads in [1, 4] {
        let results = experiments::all(Profile::Quick, &ExpCtx::new(threads));
        let mut rendered = String::new();
        for r in &results {
            rendered.push_str(&experiments::render_result(r));
        }
        rendered.push_str(&experiments::render_footer(&results));
        assert_eq!(
            rendered, GOLDEN_TABLES,
            "experiment tables drifted from the pre-redesign golden (threads={threads})"
        );
        let doc = experiments::results_json(Profile::Quick, true, &results).to_string() + "\n";
        assert_eq!(
            doc, GOLDEN_RESULTS,
            "BENCH_RESULTS.json drifted from the pre-redesign golden (threads={threads})"
        );
    }
}
