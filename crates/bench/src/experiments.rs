//! The experiment implementations (E1–E12 of DESIGN.md §3).
//!
//! Each function returns an [`ExpResult`]: a markdown table with one
//! row per configuration, a global `pass` flag (every paper bound
//! held), and free-form notes. The `experiments` binary prints these.

use ssr_alliance::{fga_sdr, presets, verify};
use ssr_baselines::{CfgUnison, MonoReset, MonoState, Phase};
use ssr_core::{alive_roots, toys::Agreement, Sdr, SegmentTracker, Standalone};
use ssr_core::{RULE_C, RULE_R, RULE_RB, RULE_RF};
use ssr_graph::{metrics, Graph, NodeId};
use ssr_runtime::report::{ratio, Table};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, Daemon, Simulator, StepOutcome};
use ssr_unison::{spec, unison_sdr, Unison};

use crate::workloads::{daemon_suite, topology_suite, unison_tear, unison_tear_plain};

/// Sweep profile: `Quick` for tests, `Full` for the release harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Small sizes, few trials (seconds in debug builds).
    Quick,
    /// The sizes used by the release harness.
    Full,
}

impl Profile {
    fn sizes(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![8, 12],
            Profile::Full => vec![16, 32, 64],
        }
    }

    fn small_sizes(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![8],
            Profile::Full => vec![12, 24, 48],
        }
    }

    fn trials(self) -> u64 {
        match self {
            Profile::Quick => 2,
            Profile::Full => 5,
        }
    }

    fn step_cap(self) -> u64 {
        match self {
            Profile::Quick => 5_000_000,
            Profile::Full => 200_000_000,
        }
    }
}

/// One experiment's output.
#[derive(Clone, Debug)]
pub struct ExpResult {
    /// Experiment id (e.g. `"E1+E2"`).
    pub id: &'static str,
    /// Human-readable claim being reproduced.
    pub title: String,
    /// The regenerated table.
    pub table: Table,
    /// Whether every paper bound held on every row.
    pub pass: bool,
    /// Additional observations.
    pub notes: Vec<String>,
}

impl ExpResult {
    fn new(id: &'static str, title: &str, table: Table, pass: bool, notes: Vec<String>) -> Self {
        ExpResult {
            id,
            title: title.to_string(),
            table,
            pass,
            notes,
        }
    }
}

fn fmt_u(x: u64) -> String {
    x.to_string()
}

/// E1 + E2 — Corollaries 4 and 5: pure SDR (over the rule-less
/// [`Agreement`] input) recovers within `3n` rounds, each process
/// spending at most `3n + 3` SDR moves.
pub fn e1_e2_sdr_bounds(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "n",
        "worst rounds",
        "3n",
        "r-ratio",
        "worst moves/proc",
        "3n+3",
    ]);
    let mut pass = true;
    for &n in &p.sizes() {
        for (label, g) in topology_suite(n, 0x5D2 + n as u64) {
            let nn = g.node_count() as u64;
            let mut worst_rounds = 0u64;
            let mut worst_pp = 0u64;
            for daemon in daemon_suite() {
                for trial in 0..p.trials() {
                    let sdr = Sdr::new(Agreement::new(8));
                    let rc = sdr.rule_count();
                    let init = sdr.arbitrary_config(&g, trial * 0x9E37 + nn);
                    let check = Sdr::new(Agreement::new(8));
                    let mut sim = Simulator::new(&g, sdr, init, daemon.clone(), trial);
                    let out = sim.run_until(p.step_cap(), |gr, st| check.is_normal_config(gr, st));
                    pass &= out.reached;
                    worst_rounds = worst_rounds.max(out.rounds_at_hit);
                    let pp = g
                        .nodes()
                        .map(|u| {
                            [RULE_RB, RULE_RF, RULE_C, RULE_R]
                                .iter()
                                .map(|&r| sim.stats().moves_of(u, r, rc))
                                .sum::<u64>()
                        })
                        .max()
                        .unwrap_or(0);
                    worst_pp = worst_pp.max(pp);
                }
            }
            pass &= worst_rounds <= 3 * nn && worst_pp <= 3 * nn + 3;
            table.row_vec(vec![
                label.to_string(),
                nn.to_string(),
                fmt_u(worst_rounds),
                fmt_u(3 * nn),
                ratio(worst_rounds as f64, 3.0 * nn as f64),
                fmt_u(worst_pp),
                fmt_u(3 * nn + 3),
            ]);
        }
    }
    ExpResult::new(
        "E1+E2",
        "SDR recovery ≤ 3n rounds (Cor. 5) and ≤ 3n+3 SDR moves per process (Cor. 4)",
        table,
        pass,
        vec![],
    )
}

/// E3 — Theorem 3 / Remark 5 / Corollary 3: alive roots never created,
/// ≤ n+1 segments, per-segment rule language respected.
pub fn e3_segments(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "n",
        "init roots",
        "segments",
        "n+1",
        "violations",
    ]);
    let mut pass = true;
    for &n in &p.sizes() {
        for (label, g) in topology_suite(n, 0xE3 + n as u64) {
            let nn = g.node_count();
            let sdr = Sdr::new(Agreement::new(6));
            let init = sdr.arbitrary_config(&g, 0xE3_000 + n as u64);
            let roots0 = alive_roots(&sdr, &g, &init).len();
            let mut tracker = SegmentTracker::new(&sdr, &g, &init);
            let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, 17);
            for _ in 0..p.step_cap() {
                match sim.step() {
                    StepOutcome::Terminal => break,
                    StepOutcome::Progress { .. } => tracker.after_step(
                        sim.algorithm(),
                        sim.graph(),
                        sim.states(),
                        sim.last_activated(),
                    ),
                }
            }
            let report = tracker.report();
            pass &= report.ok() && report.segments <= nn as u64 + 1;
            table.row_vec(vec![
                label.to_string(),
                nn.to_string(),
                roots0.to_string(),
                report.segments.to_string(),
                (nn + 1).to_string(),
                report.violations.len().to_string(),
            ]);
        }
    }
    ExpResult::new(
        "E3",
        "Alive-root monotonicity, ≤ n+1 segments, per-segment rule grammar (Thm 3, Rem 5, Cor 3)",
        table,
        pass,
        vec![],
    )
}

/// E4 + E5 — Theorems 6 and 7, with the CFG baseline comparison: the
/// SDR-based unison stabilizes in ≤ 3n rounds and O(D·n²) moves, and
/// beats uncoordinated local resets on moves with a widening gap.
pub fn e4_e5_unison(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "n",
        "D",
        "sdr rounds",
        "3n",
        "sdr moves",
        "T6 bound",
        "cfg moves",
        "cfg/sdr",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();
    let mut prev_ratio: Option<(usize, f64)> = None;
    for &n in &p.sizes() {
        for (label, g) in topology_suite(n, 0xE45 + n as u64) {
            let nn = g.node_count() as u64;
            let d = metrics::diameter(&g).max(1) as u64;
            let mut sdr_rounds = 0u64;
            let mut sdr_moves = 0u64;
            let mut cfg_moves = 0u64;
            for trial in 0..p.trials() {
                let seed = trial * 31 + nn;
                // U ∘ SDR from an arbitrary configuration.
                let algo = unison_sdr(Unison::for_graph(&g));
                let init = algo.arbitrary_config(&g, seed);
                let check = unison_sdr(Unison::for_graph(&g));
                let mut sim =
                    Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, trial);
                let out = sim.run_until(p.step_cap(), |gr, st| check.is_normal_config(gr, st));
                pass &= out.reached;
                sdr_rounds = sdr_rounds.max(out.rounds_at_hit);
                sdr_moves = sdr_moves.max(out.moves_at_hit);
                // CFG baseline from an arbitrary configuration.
                let cfg = CfgUnison::for_graph(&g);
                let k = cfg.period();
                let cinit = cfg.arbitrary_config(&g, seed);
                let mut csim =
                    Simulator::new(&g, cfg, cinit, Daemon::RandomSubset { p: 0.5 }, trial);
                let cout = csim.run_until(p.step_cap(), |gr, st| spec::safety_holds(gr, st, k));
                pass &= cout.reached;
                cfg_moves = cfg_moves.max(cout.moves_at_hit);
            }
            let bound = spec::theorem6_move_bound(nn, d);
            pass &= sdr_rounds <= 3 * nn && sdr_moves <= bound;
            if label == "ring" {
                let r = cfg_moves as f64 / sdr_moves.max(1) as f64;
                if let Some((pn, pr)) = prev_ratio {
                    notes.push(format!(
                        "ring: cfg/sdr move ratio grows {pr:.2} (n={pn}) → {r:.2} (n={})",
                        nn
                    ));
                }
                prev_ratio = Some((nn as usize, r));
            }
            table.row_vec(vec![
                label.to_string(),
                nn.to_string(),
                d.to_string(),
                fmt_u(sdr_rounds),
                fmt_u(3 * nn),
                fmt_u(sdr_moves),
                fmt_u(bound),
                fmt_u(cfg_moves),
                ratio(cfg_moves as f64, sdr_moves.max(1) as f64),
            ]);
        }
    }
    notes.push(
        "the paper's comparison is on worst-case bounds: U∘SDR is O(D·n²) vs O(D·n³+α·n²) \
         for the [11]/[20] family; on random (non-worst-case) configurations the specialized \
         min-repair is cheaper in absolute moves, and the cfg/sdr ratio growing with n is \
         the measurable signature of its worse asymptotics"
            .into(),
    );
    ExpResult::new(
        "E4+E5",
        "U ∘ SDR: ≤ 3n rounds (Thm 7), ≤ (3D+3)n²+(3D+1)(n−1)+1 moves (Thm 6), vs CFG baseline",
        table,
        pass,
        notes,
    )
}

/// E6 — the unison specification holds after stabilization (Cor. 7,
/// Lem. 19): safety at every instant, liveness as minimum increments.
pub fn e6_unison_spec(p: Profile) -> ExpResult {
    let mut table = Table::new(["topology", "n", "safety violations", "min increments"]);
    let mut pass = true;
    for &n in &p.small_sizes() {
        for (label, g) in topology_suite(n, 0xE6 + n as u64) {
            let algo = unison_sdr(Unison::for_graph(&g));
            let k = algo.input().period();
            let init = algo.arbitrary_config(&g, 0xE6_00 + n as u64);
            let check = unison_sdr(Unison::for_graph(&g));
            let mut sim = Simulator::new(&g, algo, init, Daemon::RoundRobin, 3);
            let out = sim.run_until(p.step_cap(), |gr, st| check.is_normal_config(gr, st));
            pass &= out.reached;
            let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
            let mut monitor = spec::LivenessMonitor::new(&clocks);
            let mut violations = 0usize;
            let window = 200 * g.node_count() as u64;
            for _ in 0..window {
                sim.step();
                let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
                violations += spec::safety_violations(&g, &clocks, k);
                monitor.observe(&clocks);
            }
            pass &= violations == 0 && monitor.min_increments() > 0;
            table.row_vec(vec![
                label.to_string(),
                g.node_count().to_string(),
                violations.to_string(),
                monitor.min_increments().to_string(),
            ]);
        }
    }
    ExpResult::new(
        "E6",
        "Unison specification after stabilization: zero safety violations, all clocks advance",
        table,
        pass,
        vec![],
    )
}

/// E7 — Theorems 9/10, Corollaries 11/12: standalone FGA from γ_init.
pub fn e7_fga_standalone(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "preset",
        "n",
        "rounds",
        "5n+4",
        "moves",
        "C11 bound",
        "1-minimal",
    ]);
    let mut pass = true;
    for &n in &p.small_sizes() {
        for (label, g) in topology_suite(n, 0xE7 + n as u64) {
            let nn = g.node_count() as u64;
            let m = g.edge_count() as u64;
            let delta = g.max_degree() as u64;
            for (preset_label, fga) in presets::all_presets(&g) {
                let f = fga.f().to_vec();
                let gg = fga.g().to_vec();
                let ids = fga.ids().to_vec();
                let alg = Standalone::new(fga);
                let init = alg.initial_config(&g);
                let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.5 }, nn);
                let out = sim.run_to_termination(p.step_cap());
                pass &= out.terminal;
                let rounds = sim.stats().completed_rounds + 1;
                let moves = sim.stats().moves;
                let members = verify::members(sim.states().iter());
                let alliance = verify::is_alliance(&g, &f, &gg, &members);
                let one_min = verify::is_one_minimal(&g, &f, &gg, &members);
                let corner_ok = verify::gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &members);
                pass &= alliance
                    && corner_ok
                    && rounds <= verify::corollary12_round_bound(nn)
                    && moves <= verify::corollary11_move_bound(nn, m, delta);
                table.row_vec(vec![
                    label.to_string(),
                    preset_label.to_string(),
                    nn.to_string(),
                    fmt_u(rounds),
                    fmt_u(verify::corollary12_round_bound(nn)),
                    fmt_u(moves),
                    fmt_u(verify::corollary11_move_bound(nn, m, delta)),
                    if one_min {
                        "yes".into()
                    } else {
                        "corner*".into()
                    },
                ]);
            }
        }
    }
    ExpResult::new(
        "E7",
        "Standalone FGA from γ_init: ≤ 5n+4 rounds (Cor. 12), ≤ 16Δm+36m+24n moves (Cor. 11)",
        table,
        pass,
        vec!["(*) zero-g-slack corner, see ssr-alliance docs".into()],
    )
}

/// E8 (+E12) — Theorems 11–14: FGA ∘ SDR is silent, self-stabilizing,
/// within the round/move bounds.
pub fn e8_fga_sdr(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "n",
        "silent",
        "rounds",
        "8n+4",
        "moves",
        "T12 bound",
        "1-minimal",
    ]);
    let mut pass = true;
    for &n in &p.small_sizes() {
        for (label, g) in topology_suite(n, 0xE8 + n as u64) {
            let nn = g.node_count() as u64;
            let m = g.edge_count() as u64;
            let delta = g.max_degree() as u64;
            let mut worst_rounds = 0u64;
            let mut worst_moves = 0u64;
            let mut all_silent = true;
            let mut all_one_min = true;
            for trial in 0..p.trials() {
                let fga = presets::domination(&g).expect("domination always valid");
                let f = fga.f().to_vec();
                let gg = fga.g().to_vec();
                let algo = fga_sdr(fga);
                let init = algo.arbitrary_config(&g, trial * 131 + nn);
                let mut sim = Simulator::new(&g, algo, init, Daemon::Central, trial);
                let out = sim.run_to_termination(p.step_cap());
                all_silent &= out.terminal;
                worst_rounds = worst_rounds.max(sim.stats().completed_rounds + 1);
                worst_moves = worst_moves.max(sim.stats().moves);
                let members = verify::members(sim.states().iter().map(|s| &s.inner));
                all_one_min &= verify::is_one_minimal(&g, &f, &gg, &members);
            }
            pass &= all_silent
                && all_one_min
                && worst_rounds <= verify::theorem14_round_bound(nn)
                && worst_moves <= verify::theorem12_move_bound(nn, m, delta);
            table.row_vec(vec![
                label.to_string(),
                nn.to_string(),
                if all_silent {
                    "yes".into()
                } else {
                    "NO".into()
                },
                fmt_u(worst_rounds),
                fmt_u(verify::theorem14_round_bound(nn)),
                fmt_u(worst_moves),
                fmt_u(verify::theorem12_move_bound(nn, m, delta)),
                if all_one_min {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    ExpResult::new(
        "E8+E12",
        "FGA ∘ SDR (domination): silent, ≤ 8n+4 rounds (Thm 14), ≤ (n+1)(16mΔ+36m+27n) moves (Thm 12)",
        table,
        pass,
        vec![],
    )
}

/// E9 — the six classical reductions of §6.1, verified against their
/// own definitions.
pub fn e9_presets(p: Profile) -> ExpResult {
    let n = match p {
        Profile::Quick => 9,
        Profile::Full => 16,
    };
    let side = (n as f64).sqrt().round() as usize;
    let graphs: Vec<(&str, Graph)> = vec![
        (
            "torus",
            ssr_graph::generators::torus(side.max(3), side.max(3)),
        ),
        ("complete", ssr_graph::generators::complete(n)),
        (
            "rand",
            ssr_graph::generators::random_connected(n, 2 * n, 0xE9),
        ),
    ];
    let mut table = Table::new(["graph", "preset", "|A|", "classical ok", "1-minimal"]);
    let mut pass = true;
    for (glabel, g) in &graphs {
        for (label, fga) in presets::all_presets(g) {
            let f = fga.f().to_vec();
            let gg = fga.g().to_vec();
            let ids = fga.ids().to_vec();
            let algo = fga_sdr(fga);
            let init = algo.arbitrary_config(g, 0xE90 + n as u64);
            let mut sim = Simulator::new(g, algo, init, Daemon::Central, 9);
            let out = sim.run_to_termination(p.step_cap());
            pass &= out.terminal;
            let members = verify::members(sim.states().iter().map(|s| &s.inner));
            let classical = match label {
                "domination(1,0)" => verify::is_dominating_set(g, &members),
                "2-domination(2,0)" => verify::is_k_dominating_set(g, &members, 2),
                "2-tuple(2,1)" => verify::is_k_tuple_dominating_set(g, &members, 2),
                "offensive" => verify::is_global_offensive_alliance(g, &members),
                "defensive" => verify::is_global_defensive_alliance(g, &members),
                "powerful" => verify::is_global_powerful_alliance(g, &members),
                _ => false,
            };
            let one_min = verify::is_one_minimal(g, &f, &gg, &members);
            pass &= classical && verify::gap_explained_by_gslack_corner(g, &f, &gg, &ids, &members);
            table.row_vec(vec![
                glabel.to_string(),
                label.to_string(),
                members.iter().filter(|&&b| b).count().to_string(),
                if classical { "yes".into() } else { "NO".into() },
                if one_min {
                    "yes".into()
                } else {
                    "corner*".into()
                },
            ]);
        }
    }
    ExpResult::new(
        "E9",
        "(f,g)-alliance reductions (§6.1 items 1–6) verified against the classical definitions",
        table,
        pass,
        vec!["(*) zero-g-slack corner, see ssr-alliance docs".into()],
    )
}

/// E10 — the cooperation ablation: coordinated resets (`U ∘ SDR`) vs
/// uncoordinated local resets (CFG) on tear workloads.
pub fn e10_ablation(p: Profile) -> ExpResult {
    let mut table = Table::new([
        "topology",
        "n",
        "gap",
        "sdr moves",
        "cfg moves",
        "sdr rounds",
        "cfg rounds",
        "winner",
    ]);
    let mut pass = true;
    for &n in &p.sizes() {
        for (label, g) in [
            ("ring", ssr_graph::generators::ring(n.max(3))),
            ("path", ssr_graph::generators::path(n)),
        ] {
            for gap in [3u64, (n as u64) / 2] {
                // SDR side: its paper bounds must hold (this is the
                // `pass` criterion).
                let d = metrics::diameter(&g).max(1) as u64;
                let nn = g.node_count() as u64;
                let algo = unison_sdr(Unison::for_graph(&g));
                let k_sdr = algo.input().period();
                let init = unison_tear(&g, k_sdr, gap);
                let check = unison_sdr(Unison::for_graph(&g));
                let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 5);
                let out = sim.run_until(p.step_cap(), |gr, st| check.is_normal_config(gr, st));
                pass &= out.reached
                    && out.rounds_at_hit <= 3 * nn
                    && out.moves_at_hit <= spec::theorem6_move_bound(nn, d);
                // CFG side: the baseline has no such guarantee — on
                // cycles its reset waves chase each other, and blowing
                // the step cap is a *finding*, not a failure.
                let cfg = CfgUnison::for_graph(&g);
                let k_cfg = cfg.period();
                let cinit = unison_tear_plain(&g, k_cfg, gap);
                let mut csim = Simulator::new(&g, cfg, cinit, Daemon::Central, 5);
                // Separate, smaller cap: the baseline can burn 5+ orders
                // of magnitude more moves than SDR here.
                let baseline_cap = match p {
                    Profile::Quick => 2_000_000,
                    Profile::Full => 60_000_000,
                };
                let cout = csim.run_until(baseline_cap, |gr, st| spec::safety_holds(gr, st, k_cfg));
                let (cfg_moves, cfg_rounds) = if cout.reached {
                    (fmt_u(cout.moves_at_hit), fmt_u(cout.rounds_at_hit))
                } else {
                    (format!(">{baseline_cap}"), "—".to_string())
                };
                let winner = if !cout.reached || out.moves_at_hit <= cout.moves_at_hit {
                    "sdr"
                } else {
                    "cfg"
                };
                table.row_vec(vec![
                    label.to_string(),
                    g.node_count().to_string(),
                    gap.to_string(),
                    fmt_u(out.moves_at_hit),
                    cfg_moves,
                    fmt_u(out.rounds_at_hit),
                    cfg_rounds,
                    winner.to_string(),
                ]);
            }
        }
    }
    ExpResult::new(
        "E10",
        "Ablation: cooperative resets vs uncoordinated local resets on clock-tear workloads",
        table,
        pass,
        vec![
            "on acyclic topologies a single benign tear favors the problem-specialized local \
             repair (reset-to-0) by a constant factor; on CYCLES the uncoordinated waves chase \
             each other around the ring (the very pathology §1 motivates cooperation with): \
             at n=32 the ring crossover is ~5 orders of magnitude in moves, and at n=64 the \
             baseline exhausts the step cap while U∘SDR stays within its 3n-round bound"
                .into(),
        ],
    )
}

/// E11 — transient-fault recovery: corrupt `k` clocks of a legitimate
/// system, measure recovery; three-way comparison SDR / CFG / mono-
/// initiator reset.
pub fn e11_faults(p: Profile) -> ExpResult {
    let n = match p {
        Profile::Quick => 12,
        Profile::Full => 32,
    };
    let g = ssr_graph::generators::ring(n);
    let ks = [1usize, 2, n / 4, n / 2, n];
    let mut table = Table::new([
        "k faults",
        "sdr rounds",
        "sdr moves",
        "cfg rounds",
        "cfg moves",
        "mono rounds",
        "mono moves",
    ]);
    let mut pass = true;
    for &k in &ks {
        // --- U ∘ SDR ---
        let algo = unison_sdr(Unison::for_graph(&g));
        let period = algo.input().period();
        let check = unison_sdr(Unison::for_graph(&g));
        let init = algo.initial_config(&g);
        let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 1);
        for _ in 0..10 * n as u64 {
            sim.step(); // let the healthy system run a little first
        }
        let mut rng = Xoshiro256StarStar::seed_from_u64(k as u64 + 7);
        for u in pick_victims(&g, k, &mut rng) {
            let mut s = *sim.state(u);
            s.inner = rng.below(period); // clock-only corruption
            sim.inject(u, s);
        }
        sim.reset_stats();
        let out = sim.run_until(p.step_cap(), |gr, st| check.is_normal_config(gr, st));
        pass &= out.reached;
        // --- CFG ---
        let cfg = CfgUnison::for_graph(&g);
        let k_cfg = cfg.period();
        let mut csim = Simulator::new(&g, cfg, vec![0; n], Daemon::RandomSubset { p: 0.5 }, 1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(k as u64 + 7);
        ssr_runtime::faults::corrupt_random(&mut csim, k, &mut rng, |_, r| r.below(k_cfg));
        csim.reset_stats();
        let cout = csim.run_until(p.step_cap(), |gr, st| spec::safety_holds(gr, st, k_cfg));
        pass &= cout.reached;
        // --- Mono-initiator reset over U ---
        let mono = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
        let mcheck = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
        let minit = mono.initial_config(&g);
        let mut msim = Simulator::new(&g, mono, minit, Daemon::RandomSubset { p: 0.5 }, 1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(k as u64 + 7);
        ssr_runtime::faults::corrupt_random(&mut msim, k, &mut rng, |_, r| MonoState {
            phase: Phase::Idle,
            inner: r.below(period),
        });
        msim.reset_stats();
        let mout = msim.run_until(p.step_cap(), |gr, st| mcheck.is_normal_config(gr, st));
        pass &= mout.reached;
        table.row_vec(vec![
            k.to_string(),
            fmt_u(out.rounds_at_hit),
            fmt_u(out.moves_at_hit),
            fmt_u(cout.rounds_at_hit),
            fmt_u(cout.moves_at_hit),
            fmt_u(mout.rounds_at_hit),
            fmt_u(mout.moves_at_hit),
        ]);
    }
    ExpResult::new(
        "E11",
        "Recovery from k corrupted clocks on a legitimate ring: SDR vs CFG vs mono-initiator",
        table,
        pass,
        vec![format!("ring n = {n}; clock-only corruption, seeds fixed")],
    )
}

/// Samples `k` distinct victims (shared by the three systems so they
/// face the same fault pattern).
fn pick_victims(g: &Graph, k: usize, rng: &mut Xoshiro256StarStar) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.nodes().collect();
    for i in 0..k {
        let j = i + rng.index(ids.len() - i);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// A catalog entry: the group's id plus the function computing it.
pub type ExpRunner = (&'static str, fn(Profile) -> ExpResult);

/// The experiment groups as `(id, runner)` pairs in presentation
/// order, without computing anything — callers can filter by id and
/// run only what they need.
pub fn catalog() -> Vec<ExpRunner> {
    vec![
        ("E1+E2", e1_e2_sdr_bounds),
        ("E3", e3_segments),
        ("E4+E5", e4_e5_unison),
        ("E6", e6_unison_spec),
        ("E7", e7_fga_standalone),
        ("E8+E12", e8_fga_sdr),
        ("E9", e9_presets),
        ("E10", e10_ablation),
        ("E11", e11_faults),
    ]
}

/// Runs every experiment group in catalog order.
pub fn all(p: Profile) -> Vec<ExpResult> {
    catalog().into_iter().map(|(_, run)| run(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_e2_quick_pass() {
        let r = e1_e2_sdr_bounds(Profile::Quick);
        assert_eq!(r.id, "E1+E2");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e3_quick_pass() {
        let r = e3_segments(Profile::Quick);
        assert_eq!(r.id, "E3");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e4_e5_quick_pass() {
        let r = e4_e5_unison(Profile::Quick);
        assert_eq!(r.id, "E4+E5");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e6_quick_pass() {
        let r = e6_unison_spec(Profile::Quick);
        assert_eq!(r.id, "E6");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e7_quick_pass() {
        let r = e7_fga_standalone(Profile::Quick);
        assert_eq!(r.id, "E7");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e8_quick_pass() {
        let r = e8_fga_sdr(Profile::Quick);
        assert_eq!(r.id, "E8+E12");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e9_quick_pass() {
        let r = e9_presets(Profile::Quick);
        assert_eq!(r.id, "E9");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e10_quick_pass() {
        let r = e10_ablation(Profile::Quick);
        assert_eq!(r.id, "E10");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e11_quick_pass() {
        let r = e11_faults(Profile::Quick);
        assert_eq!(r.id, "E11");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn catalog_covers_every_group_once() {
        // The id of each computed result is asserted by the per-group
        // tests above; here only the (cheap) catalog structure.
        let ids: Vec<&str> = catalog().iter().map(|(id, _)| *id).collect();
        assert_eq!(
            ids,
            ["E1+E2", "E3", "E4+E5", "E6", "E7", "E8+E12", "E9", "E10", "E11"]
        );
    }
}
