//! The experiment implementations (E1–E12 of DESIGN.md §3), expressed
//! as [`Campaign`] definitions over the `ssr-campaign` engine, with
//! every trajectory probe attached as an `ssr_runtime::Observer` — no
//! experiment owns a stepping loop.
//!
//! Each experiment builds a declarative scenario grid, drains it on
//! `threads` workers (results are byte-identical for any thread
//! count — the engine's determinism contract), and folds the records
//! into an [`ExpResult`]: a markdown table with one row per
//! configuration, a global `pass` flag (every paper bound held),
//! headline KPIs for machine-readable output, and free-form notes.
//! The `experiments` binary prints these.

use ssr_alliance::verify::AllianceObserver;
use ssr_alliance::{fga_sdr, verify};
use ssr_baselines::{CfgUnison, MonoReset, MonoState, Phase};
use ssr_campaign::{
    families, run_scenario, warm_up_and_corrupt_clocks, Amount, Campaign, InitPlan, PresetSpec,
    ScenarioRecord, TopologySpec, Verdict,
};
use ssr_core::{alive_roots, toys::Agreement, Sdr, SegmentObserver, Standalone};
use ssr_explore::campaign::{explore_scenario, stochastic_max, ScenarioExploreOptions};
use ssr_graph::NodeId;
use ssr_runtime::report::{ratio, Table};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Daemon, Simulator, TerminationReason};
use ssr_unison::{spec, unison_sdr, Unison};

use crate::ctx::ExpCtx;
use crate::workloads::daemon_suite;

/// Sweep profile: `Quick` for tests, `Full` for the release harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Small sizes, few trials (seconds in debug builds).
    Quick,
    /// The sizes used by the release harness.
    Full,
}

impl Profile {
    fn sizes(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![8, 12],
            Profile::Full => vec![16, 32, 64],
        }
    }

    fn small_sizes(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![8],
            Profile::Full => vec![12, 24, 48],
        }
    }

    fn trials(self) -> u64 {
        match self {
            Profile::Quick => 2,
            Profile::Full => 5,
        }
    }

    fn step_cap(self) -> u64 {
        match self {
            Profile::Quick => 5_000_000,
            Profile::Full => 200_000_000,
        }
    }
}

/// The topology axis shared by the sweeps (same families as the
/// original `topology_suite`).
fn exp_topologies() -> Vec<TopologySpec> {
    vec![
        TopologySpec::Ring,
        TopologySpec::Path,
        TopologySpec::Star,
        TopologySpec::RandTree,
        TopologySpec::RandSparse,
        TopologySpec::Grid,
    ]
}

/// Headline numbers for machine-readable results (`--format json`).
#[derive(Clone, Debug, Default)]
pub struct ExpKpi {
    /// Nominal sizes swept.
    pub sizes: Vec<usize>,
    /// Worst stabilization rounds observed.
    pub rounds: u64,
    /// Worst move count observed.
    pub moves: u64,
    /// The operative closed-form bound at the largest configuration
    /// (rounds bound where one exists, otherwise the move bound).
    pub bound: u64,
}

/// One experiment's output.
#[derive(Clone, Debug)]
pub struct ExpResult {
    /// Experiment id (e.g. `"E1+E2"`).
    pub id: &'static str,
    /// Human-readable claim being reproduced.
    pub title: String,
    /// The regenerated table.
    pub table: Table,
    /// Whether every paper bound held on every row.
    pub pass: bool,
    /// Additional observations.
    pub notes: Vec<String>,
    /// Headline numbers for the JSON results file.
    pub kpi: ExpKpi,
}

impl ExpResult {
    fn new(
        id: &'static str,
        title: &str,
        table: Table,
        pass: bool,
        notes: Vec<String>,
        kpi: ExpKpi,
    ) -> Self {
        ExpResult {
            id,
            title: title.to_string(),
            table,
            pass,
            notes,
            kpi,
        }
    }
}

fn fmt_u(x: u64) -> String {
    x.to_string()
}

fn max_of(records: &[&ScenarioRecord], f: impl Fn(&ScenarioRecord) -> u64) -> u64 {
    records.iter().map(|r| f(r)).max().unwrap_or(0)
}

/// E1 + E2 — Corollaries 4 and 5: pure SDR (over the rule-less
/// [`Agreement`] input) recovers within `3n` rounds, each process
/// spending at most `3n + 3` SDR moves.
pub fn e1_e2_sdr_bounds(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e1e2-sdr-bounds")
        .topologies(exp_topologies())
        .sizes(p.sizes())
        .algorithms(vec![families::sdr_agreement(8)])
        .daemons(daemon_suite())
        .inits(vec![InitPlan::Arbitrary])
        .trials(p.trials())
        .step_cap(p.step_cap())
        .seed(0x5D2_E1E2);
    let records = ctx.run(&campaign);
    let mut table = Table::new([
        "topology",
        "n",
        "worst rounds",
        "3n",
        "r-ratio",
        "worst moves/proc",
        "3n+3",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.sizes(),
        ..ExpKpi::default()
    };
    for &n in &p.sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            let group: Vec<&ScenarioRecord> = records
                .iter()
                .filter(|r| r.n == n && r.topology == label)
                .collect();
            let nn = group[0].nodes;
            let worst_rounds = max_of(&group, |r| r.rounds);
            let worst_pp = max_of(&group, |r| r.max_moves_per_process);
            pass &= group.iter().all(|r| r.verdict == Verdict::Pass);
            kpi.rounds = kpi.rounds.max(worst_rounds);
            kpi.moves = kpi.moves.max(max_of(&group, |r| r.moves));
            kpi.bound = kpi.bound.max(3 * nn);
            table.row_vec(vec![
                label,
                nn.to_string(),
                fmt_u(worst_rounds),
                fmt_u(3 * nn),
                ratio(worst_rounds as f64, 3.0 * nn as f64),
                fmt_u(worst_pp),
                fmt_u(3 * nn + 3),
            ]);
        }
    }
    ExpResult::new(
        "E1+E2",
        "SDR recovery ≤ 3n rounds (Cor. 5) and ≤ 3n+3 SDR moves per process (Cor. 4)",
        table,
        pass,
        vec![],
        kpi,
    )
}

struct E3Row {
    topology: String,
    n: usize,
    nodes: usize,
    roots0: usize,
    segments: u64,
    violations: usize,
    ok: bool,
    rounds: u64,
    moves: u64,
}

/// E3 — Theorem 3 / Remark 5 / Corollary 3: alive roots never created,
/// ≤ n+1 segments, per-segment rule language respected.
pub fn e3_segments(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e3-segments")
        .topologies(exp_topologies())
        .sizes(p.sizes())
        .algorithms(vec![families::sdr_agreement(6)])
        .daemons(vec![Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![InitPlan::Arbitrary])
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE3_000);
    let rows = ctx.run_with(&campaign, |sc| {
        let [graph_seed, init_seed, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let sdr = Sdr::new(Agreement::new(6));
        let init = sdr.arbitrary_config(&g, init_seed);
        let roots0 = alive_roots(&sdr, &g, &init).len();
        let mut probe = SegmentObserver::new(&sdr, &g, &init);
        let mut sim = Simulator::new(&g, sdr, init, sc.daemon.clone(), sim_seed);
        ctx.attach("e3-segments", sc.index, &mut sim);
        sim.execution().cap(sc.step_cap).observe(&mut probe).run();
        ctx.collect(&mut sim);
        let report = probe.report();
        E3Row {
            topology: sc.topology.label(),
            n: sc.n,
            nodes: g.node_count(),
            roots0,
            segments: report.segments,
            violations: report.violations.len(),
            ok: report.ok(),
            rounds: sim.stats().completed_rounds,
            moves: sim.stats().moves,
        }
    });
    let mut table = Table::new([
        "topology",
        "n",
        "init roots",
        "segments",
        "n+1",
        "violations",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.sizes(),
        ..ExpKpi::default()
    };
    for &n in &p.sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            let row = rows
                .iter()
                .find(|r| r.n == n && r.topology == label)
                .expect("one row per grid cell");
            pass &= row.ok && row.segments <= row.nodes as u64 + 1;
            kpi.rounds = kpi.rounds.max(row.rounds);
            kpi.moves = kpi.moves.max(row.moves);
            kpi.bound = kpi.bound.max(row.nodes as u64 + 1);
            table.row_vec(vec![
                label,
                row.nodes.to_string(),
                row.roots0.to_string(),
                row.segments.to_string(),
                (row.nodes + 1).to_string(),
                row.violations.to_string(),
            ]);
        }
    }
    ExpResult::new(
        "E3",
        "Alive-root monotonicity, ≤ n+1 segments, per-segment rule grammar (Thm 3, Rem 5, Cor 3)",
        table,
        pass,
        vec![],
        kpi,
    )
}

/// E4 + E5 — Theorems 6 and 7, with the CFG baseline comparison: the
/// SDR-based unison stabilizes in ≤ 3n rounds and O(D·n²) moves, and
/// beats uncoordinated local resets on moves with a widening gap.
pub fn e4_e5_unison(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e4e5-unison")
        .topologies(exp_topologies())
        .sizes(p.sizes())
        .algorithms(vec![families::unison_sdr(), families::cfg_unison()])
        .daemons(vec![Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![InitPlan::Arbitrary])
        .trials(p.trials())
        .step_cap(p.step_cap())
        .seed(0xE45);
    let records = ctx.run(&campaign);
    let mut table = Table::new([
        "topology",
        "n",
        "D",
        "sdr rounds",
        "3n",
        "sdr moves",
        "T6 bound",
        "cfg moves",
        "cfg/sdr",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();
    let mut prev_ratio: Option<(usize, f64)> = None;
    let mut kpi = ExpKpi {
        sizes: p.sizes(),
        ..ExpKpi::default()
    };
    let sdr_label = families::unison_sdr().label();
    let cfg_label = families::cfg_unison().label();
    for &n in &p.sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            let cell: Vec<&ScenarioRecord> = records
                .iter()
                .filter(|r| r.n == n && r.topology == label)
                .collect();
            let sdr: Vec<&ScenarioRecord> = cell
                .iter()
                .copied()
                .filter(|r| r.algorithm == sdr_label)
                .collect();
            let cfg: Vec<&ScenarioRecord> = cell
                .iter()
                .copied()
                .filter(|r| r.algorithm == cfg_label)
                .collect();
            let nn = sdr[0].nodes;
            let d = max_of(&sdr, |r| r.diameter);
            let sdr_rounds = max_of(&sdr, |r| r.rounds);
            let sdr_moves = max_of(&sdr, |r| r.moves);
            let cfg_moves = max_of(&cfg, |r| r.moves);
            let bound = max_of(&sdr, |r| r.bound_moves.unwrap_or(0));
            pass &= sdr.iter().all(|r| r.verdict == Verdict::Pass);
            pass &= cfg.iter().all(|r| r.reached);
            kpi.rounds = kpi.rounds.max(sdr_rounds);
            kpi.moves = kpi.moves.max(sdr_moves);
            kpi.bound = kpi.bound.max(3 * nn);
            if label == "ring" {
                let r = cfg_moves as f64 / sdr_moves.max(1) as f64;
                if let Some((pn, pr)) = prev_ratio {
                    notes.push(format!(
                        "ring: cfg/sdr move ratio grows {pr:.2} (n={pn}) → {r:.2} (n={})",
                        nn
                    ));
                }
                prev_ratio = Some((nn as usize, r));
            }
            table.row_vec(vec![
                label,
                nn.to_string(),
                d.to_string(),
                fmt_u(sdr_rounds),
                fmt_u(3 * nn),
                fmt_u(sdr_moves),
                fmt_u(bound),
                fmt_u(cfg_moves),
                ratio(cfg_moves as f64, sdr_moves.max(1) as f64),
            ]);
        }
    }
    notes.push(
        "the paper's comparison is on worst-case bounds: U∘SDR is O(D·n²) vs O(D·n³+α·n²) \
         for the [11]/[20] family; on random (non-worst-case) configurations the specialized \
         min-repair is cheaper in absolute moves, and the cfg/sdr ratio growing with n is \
         the measurable signature of its worse asymptotics"
            .into(),
    );
    ExpResult::new(
        "E4+E5",
        "U ∘ SDR: ≤ 3n rounds (Thm 7), ≤ (3D+3)n²+(3D+1)(n−1)+1 moves (Thm 6), vs CFG baseline",
        table,
        pass,
        notes,
        kpi,
    )
}

struct E6Row {
    topology: String,
    n: usize,
    nodes: usize,
    reached: bool,
    violations: usize,
    min_increments: u64,
    rounds: u64,
    moves: u64,
}

/// E6 — the unison specification holds after stabilization (Cor. 7,
/// Lem. 19): safety at every instant, liveness as minimum increments.
pub fn e6_unison_spec(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e6-unison-spec")
        .topologies(exp_topologies())
        .sizes(p.small_sizes())
        .algorithms(vec![families::unison_sdr()])
        .daemons(vec![Daemon::RoundRobin])
        .inits(vec![InitPlan::Arbitrary])
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE6_00);
    let rows = ctx.run_with(&campaign, |sc| {
        let [graph_seed, init_seed, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let algo = unison_sdr(Unison::for_graph(&g));
        let init = algo.arbitrary_config(&g, init_seed);
        let check = unison_sdr(Unison::for_graph(&g));
        let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
        ctx.attach("e6-unison-spec", sc.index, &mut sim);
        let out = sim
            .execution()
            .cap(sc.step_cap)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        // The liveness window is pure observation: the spec probe sees
        // every post-stabilization step through the execution API.
        let mut probe = spec::SpecObserver::watching(&sim);
        let window = 200 * g.node_count() as u64;
        sim.execution().cap(window).observe(&mut probe).run();
        ctx.collect(&mut sim);
        E6Row {
            topology: sc.topology.label(),
            n: sc.n,
            nodes: g.node_count(),
            reached: out.reached,
            violations: probe.safety_violations(),
            min_increments: probe.min_increments(),
            rounds: out.rounds_at_hit,
            moves: out.moves_at_hit,
        }
    });
    let mut table = Table::new(["topology", "n", "safety violations", "min increments"]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.small_sizes(),
        ..ExpKpi::default()
    };
    for &n in &p.small_sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            let row = rows
                .iter()
                .find(|r| r.n == n && r.topology == label)
                .expect("one row per grid cell");
            pass &= row.reached && row.violations == 0 && row.min_increments > 0;
            kpi.rounds = kpi.rounds.max(row.rounds);
            kpi.moves = kpi.moves.max(row.moves);
            kpi.bound = kpi.bound.max(3 * row.nodes as u64);
            table.row_vec(vec![
                label,
                row.nodes.to_string(),
                row.violations.to_string(),
                row.min_increments.to_string(),
            ]);
        }
    }
    ExpResult::new(
        "E6",
        "Unison specification after stabilization: zero safety violations, all clocks advance",
        table,
        pass,
        vec![],
        kpi,
    )
}

struct FgaRow {
    topology: String,
    n: usize,
    preset: &'static str,
    nodes: u64,
    edges: u64,
    max_degree: u64,
    terminal: bool,
    rounds: u64,
    moves: u64,
    alliance: bool,
    one_minimal: bool,
    corner_ok: bool,
}

/// E7 — Theorems 9/10, Corollaries 11/12: standalone FGA from γ_init.
pub fn e7_fga_standalone(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e7-fga-standalone")
        .topologies(exp_topologies())
        .sizes(p.small_sizes())
        .algorithms(
            PresetSpec::all()
                .into_iter()
                .map(families::fga_standalone)
                .collect(),
        )
        .daemons(vec![Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![InitPlan::Normal])
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE7_00);
    let rows = ctx.run_with(&campaign, |sc| {
        let preset = sc
            .algorithm
            .params_str()
            .and_then(PresetSpec::from_label)
            .expect("axis holds standalone specs only");
        let [graph_seed, _, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let fga = preset.build(&g)?;
        let mut probe = AllianceObserver::new(&fga);
        let alg = Standalone::new(fga);
        let init = alg.initial_config(&g);
        let mut sim = Simulator::new(&g, alg, init, sc.daemon.clone(), sim_seed);
        ctx.attach("e7-fga-standalone", sc.index, &mut sim);
        let out = sim.execution().cap(sc.step_cap).observe(&mut probe).run();
        ctx.collect(&mut sim);
        let v = probe.into_verdict().expect("sampled at run end");
        Some(FgaRow {
            topology: sc.topology.label(),
            n: sc.n,
            preset: preset.label(),
            nodes: g.node_count() as u64,
            edges: g.edge_count() as u64,
            max_degree: g.max_degree() as u64,
            terminal: out.terminal,
            rounds: sim.stats().completed_rounds + 1,
            moves: sim.stats().moves,
            alliance: v.alliance,
            one_minimal: v.one_minimal,
            corner_ok: v.corner_ok,
        })
    });
    let mut table = Table::new([
        "topology",
        "preset",
        "n",
        "rounds",
        "5n+4",
        "moves",
        "C11 bound",
        "1-minimal",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.small_sizes(),
        ..ExpKpi::default()
    };
    for &n in &p.small_sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            for preset in PresetSpec::all() {
                let Some(row) = rows
                    .iter()
                    .flatten()
                    .find(|r| r.n == n && r.topology == label && r.preset == preset.label())
                else {
                    continue; // preset invalid on this graph
                };
                let round_bound = verify::corollary12_round_bound(row.nodes);
                let move_bound =
                    verify::corollary11_move_bound(row.nodes, row.edges, row.max_degree);
                pass &= row.terminal
                    && row.alliance
                    && row.corner_ok
                    && row.rounds <= round_bound
                    && row.moves <= move_bound;
                kpi.rounds = kpi.rounds.max(row.rounds);
                kpi.moves = kpi.moves.max(row.moves);
                kpi.bound = kpi.bound.max(round_bound);
                table.row_vec(vec![
                    label.clone(),
                    preset.label().to_string(),
                    row.nodes.to_string(),
                    fmt_u(row.rounds),
                    fmt_u(round_bound),
                    fmt_u(row.moves),
                    fmt_u(move_bound),
                    if row.one_minimal {
                        "yes".into()
                    } else {
                        "corner*".into()
                    },
                ]);
            }
        }
    }
    ExpResult::new(
        "E7",
        "Standalone FGA from γ_init: ≤ 5n+4 rounds (Cor. 12), ≤ 16Δm+36m+24n moves (Cor. 11)",
        table,
        pass,
        vec!["(*) zero-g-slack corner, see ssr-alliance docs".into()],
        kpi,
    )
}

/// E8 (+E12) — Theorems 11–14: FGA ∘ SDR is silent, self-stabilizing,
/// within the round/move bounds.
pub fn e8_fga_sdr(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let campaign = Campaign::new("e8-fga-sdr")
        .topologies(exp_topologies())
        .sizes(p.small_sizes())
        .algorithms(vec![families::fga_sdr(PresetSpec::Domination)])
        .daemons(vec![Daemon::Central])
        .inits(vec![InitPlan::Arbitrary])
        .trials(p.trials())
        .step_cap(p.step_cap())
        .seed(0xE8_00);
    let rows = ctx.run_with(&campaign, |sc| {
        let [graph_seed, init_seed, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let fga = PresetSpec::Domination
            .build(&g)
            .expect("domination always valid");
        let mut probe = AllianceObserver::new(&fga);
        let algo = fga_sdr(fga);
        let init = algo.arbitrary_config(&g, init_seed);
        let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
        ctx.attach("e8-fga-sdr", sc.index, &mut sim);
        let out = sim.execution().cap(sc.step_cap).observe(&mut probe).run();
        ctx.collect(&mut sim);
        let v = probe.into_verdict().expect("sampled at run end");
        FgaRow {
            topology: sc.topology.label(),
            n: sc.n,
            preset: "domination(1,0)",
            nodes: g.node_count() as u64,
            edges: g.edge_count() as u64,
            max_degree: g.max_degree() as u64,
            terminal: out.terminal,
            rounds: sim.stats().completed_rounds + 1,
            moves: sim.stats().moves,
            alliance: v.alliance,
            one_minimal: v.one_minimal,
            corner_ok: v.corner_ok,
        }
    });
    let mut table = Table::new([
        "topology",
        "n",
        "silent",
        "rounds",
        "8n+4",
        "moves",
        "T12 bound",
        "1-minimal",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.small_sizes(),
        ..ExpKpi::default()
    };
    for &n in &p.small_sizes() {
        for topo in exp_topologies() {
            let label = topo.label();
            let group: Vec<&FgaRow> = rows
                .iter()
                .filter(|r| r.n == n && r.topology == label)
                .collect();
            let nodes = group[0].nodes;
            let round_bound = verify::theorem14_round_bound(nodes);
            let move_bound = group
                .iter()
                .map(|r| verify::theorem12_move_bound(r.nodes, r.edges, r.max_degree))
                .max()
                .unwrap_or(0);
            let worst_rounds = group.iter().map(|r| r.rounds).max().unwrap_or(0);
            let worst_moves = group.iter().map(|r| r.moves).max().unwrap_or(0);
            let all_silent = group.iter().all(|r| r.terminal);
            let all_one_min = group.iter().all(|r| r.one_minimal);
            pass &= all_silent
                && all_one_min
                && group.iter().all(|r| {
                    r.rounds <= round_bound
                        && r.moves <= verify::theorem12_move_bound(r.nodes, r.edges, r.max_degree)
                });
            kpi.rounds = kpi.rounds.max(worst_rounds);
            kpi.moves = kpi.moves.max(worst_moves);
            kpi.bound = kpi.bound.max(round_bound);
            table.row_vec(vec![
                label,
                nodes.to_string(),
                if all_silent {
                    "yes".into()
                } else {
                    "NO".into()
                },
                fmt_u(worst_rounds),
                fmt_u(round_bound),
                fmt_u(worst_moves),
                fmt_u(move_bound),
                if all_one_min {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    ExpResult::new(
        "E8+E12",
        "FGA ∘ SDR (domination): silent, ≤ 8n+4 rounds (Thm 14), ≤ (n+1)(16mΔ+36m+27n) moves (Thm 12)",
        table,
        pass,
        vec![],
        kpi,
    )
}

/// E9 — the six classical reductions of §6.1, verified against their
/// own definitions.
pub fn e9_presets(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let n = match p {
        Profile::Quick => 9,
        Profile::Full => 16,
    };
    let campaign = Campaign::new("e9-presets")
        .topologies(vec![
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::RandDense,
        ])
        .sizes(vec![n])
        .algorithms(
            PresetSpec::all()
                .into_iter()
                .map(families::fga_sdr)
                .collect(),
        )
        .daemons(vec![Daemon::Central])
        .inits(vec![InitPlan::Arbitrary])
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE90);
    struct E9Row {
        graph: String,
        preset: PresetSpec,
        members: usize,
        terminal: bool,
        classical: bool,
        one_minimal: bool,
        corner_ok: bool,
        rounds: u64,
        moves: u64,
    }
    let rows = ctx.run_with(&campaign, |sc| {
        let preset = sc
            .algorithm
            .params_str()
            .and_then(PresetSpec::from_label)
            .expect("axis holds FGA∘SDR specs only");
        let [graph_seed, init_seed, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let fga = preset.build(&g)?;
        let mut probe = AllianceObserver::new(&fga);
        let algo = fga_sdr(fga);
        let init = algo.arbitrary_config(&g, init_seed);
        let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
        ctx.attach("e9-presets", sc.index, &mut sim);
        let out = sim.execution().cap(sc.step_cap).observe(&mut probe).run();
        ctx.collect(&mut sim);
        let v = probe.into_verdict().expect("sampled at run end");
        let classical = match preset {
            PresetSpec::Domination => verify::is_dominating_set(&g, &v.members),
            PresetSpec::TwoDomination => verify::is_k_dominating_set(&g, &v.members, 2),
            PresetSpec::TwoTuple => verify::is_k_tuple_dominating_set(&g, &v.members, 2),
            PresetSpec::Offensive => verify::is_global_offensive_alliance(&g, &v.members),
            PresetSpec::Defensive => verify::is_global_defensive_alliance(&g, &v.members),
            PresetSpec::Powerful => verify::is_global_powerful_alliance(&g, &v.members),
        };
        Some(E9Row {
            graph: sc.topology.label(),
            preset,
            members: v.member_count(),
            terminal: out.terminal,
            classical,
            one_minimal: v.one_minimal,
            corner_ok: v.corner_ok,
            rounds: sim.stats().completed_rounds + 1,
            moves: sim.stats().moves,
        })
    });
    let mut table = Table::new(["graph", "preset", "|A|", "classical ok", "1-minimal"]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: vec![n],
        ..ExpKpi::default()
    };
    for row in rows.iter().flatten() {
        pass &= row.terminal && row.classical && row.corner_ok;
        kpi.rounds = kpi.rounds.max(row.rounds);
        kpi.moves = kpi.moves.max(row.moves);
        kpi.bound = kpi.bound.max(verify::theorem14_round_bound(n as u64));
        table.row_vec(vec![
            row.graph.clone(),
            row.preset.label().to_string(),
            row.members.to_string(),
            if row.classical {
                "yes".into()
            } else {
                "NO".into()
            },
            if row.one_minimal {
                "yes".into()
            } else {
                "corner*".into()
            },
        ]);
    }
    ExpResult::new(
        "E9",
        "(f,g)-alliance reductions (§6.1 items 1–6) verified against the classical definitions",
        table,
        pass,
        vec!["(*) zero-g-slack corner, see ssr-alliance docs".into()],
        kpi,
    )
}

/// E10 — the cooperation ablation: coordinated resets (`U ∘ SDR`) vs
/// uncoordinated local resets (CFG) on tear workloads.
pub fn e10_ablation(p: Profile, ctx: &ExpCtx) -> ExpResult {
    // Separate, smaller cap for the baseline: it can burn 5+ orders of
    // magnitude more moves than SDR here, and blowing the cap is a
    // *finding*, not a failure.
    let baseline_cap = match p {
        Profile::Quick => 2_000_000,
        Profile::Full => 60_000_000,
    };
    let inits = vec![
        InitPlan::Tear {
            gap: Amount::Fixed(3),
        },
        InitPlan::Tear { gap: Amount::HalfN },
    ];
    let campaign = Campaign::new("e10-ablation")
        .topologies(vec![TopologySpec::Ring, TopologySpec::Path])
        .sizes(p.sizes())
        .algorithms(vec![families::unison_sdr(), families::cfg_unison()])
        .daemons(vec![Daemon::Central])
        .inits(inits.clone())
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE10);
    let records = ctx.run_with(&campaign, |mut sc| {
        if sc.algorithm == families::cfg_unison() {
            sc.step_cap = baseline_cap;
        }
        run_scenario(sc)
    });
    let mut table = Table::new([
        "topology",
        "n",
        "gap",
        "sdr moves",
        "cfg moves",
        "sdr rounds",
        "cfg rounds",
        "winner",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: p.sizes(),
        ..ExpKpi::default()
    };
    let sdr_label = families::unison_sdr().label();
    for &n in &p.sizes() {
        for topo in [TopologySpec::Ring, TopologySpec::Path] {
            let label = topo.label();
            for init in &inits {
                let init_label = init.label();
                let pair: Vec<&ScenarioRecord> = records
                    .iter()
                    .filter(|r| r.n == n && r.topology == label && r.init == init_label)
                    .collect();
                let sdr = pair
                    .iter()
                    .find(|r| r.algorithm == sdr_label)
                    .expect("sdr record");
                let cfg = pair
                    .iter()
                    .find(|r| r.algorithm != sdr_label)
                    .expect("cfg record");
                let InitPlan::Tear { gap } = init else {
                    unreachable!("init axis holds tears only")
                };
                pass &= sdr.verdict == Verdict::Pass;
                kpi.rounds = kpi.rounds.max(sdr.rounds);
                kpi.moves = kpi.moves.max(sdr.moves);
                kpi.bound = kpi.bound.max(sdr.bound_moves.unwrap_or(0));
                // Cap exhaustion is an explicit outcome now, never an
                // inference from step counts or a missed predicate.
                let cfg_capped = cfg.reason == Some(TerminationReason::CapExhausted);
                let (cfg_moves, cfg_rounds) = if !cfg_capped {
                    (fmt_u(cfg.moves), fmt_u(cfg.rounds))
                } else {
                    (format!(">{baseline_cap}"), "—".to_string())
                };
                let winner = if cfg_capped || sdr.moves <= cfg.moves {
                    "sdr"
                } else {
                    "cfg"
                };
                table.row_vec(vec![
                    label.clone(),
                    sdr.nodes.to_string(),
                    gap.resolve(sdr.nodes).to_string(),
                    fmt_u(sdr.moves),
                    cfg_moves,
                    fmt_u(sdr.rounds),
                    cfg_rounds,
                    winner.to_string(),
                ]);
            }
        }
    }
    ExpResult::new(
        "E10",
        "Ablation: cooperative resets vs uncoordinated local resets on clock-tear workloads",
        table,
        pass,
        vec![
            "on acyclic topologies a single benign tear favors the problem-specialized local \
             repair (reset-to-0) by a constant factor; on CYCLES the uncoordinated waves chase \
             each other around the ring (the very pathology §1 motivates cooperation with): \
             at n=32 the ring crossover is ~5 orders of magnitude in moves, and at n=64 the \
             baseline exhausts the step cap while U∘SDR stays within its 3n-round bound"
                .into(),
        ],
        kpi,
    )
}

struct E11Row {
    family: String,
    k: u64,
    reached: bool,
    rounds: u64,
    moves: u64,
}

/// E11 — transient-fault recovery: corrupt `k` clocks of a legitimate
/// system, measure recovery; three-way comparison SDR / CFG / mono-
/// initiator reset.
pub fn e11_faults(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let n = match p {
        Profile::Quick => 12,
        Profile::Full => 32,
    };
    let ks = [
        Amount::Fixed(1),
        Amount::Fixed(2),
        Amount::QuarterN,
        Amount::HalfN,
        Amount::N,
    ];
    let campaign = Campaign::new("e11-faults")
        .topologies(vec![TopologySpec::Ring])
        .sizes(vec![n])
        .algorithms(vec![
            families::unison_sdr(),
            families::cfg_unison(),
            families::mono_reset(),
        ])
        .daemons(vec![Daemon::RandomSubset { p: 0.5 }])
        .inits(ks.iter().map(|&k| InitPlan::CorruptClocks { k }).collect())
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE11);
    let rows = ctx.run_with(&campaign, |sc| {
        let [graph_seed, _, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let nn = g.node_count() as u64;
        let InitPlan::CorruptClocks { k } = sc.init else {
            unreachable!("init axis holds corruption plans only")
        };
        let k = k.resolve(nn);
        // The three systems share the fault pattern: the victim RNG is
        // seeded by k alone, so each family corrupts the same clocks.
        let fault_seed = k + 7;
        let period = Unison::for_graph(&g).period();
        let (reached, rounds, moves) = match sc.algorithm.family.as_str() {
            "unison-sdr" => {
                let algo = unison_sdr(Unison::for_graph(&g));
                let check = unison_sdr(Unison::for_graph(&g));
                let init = algo.initial_config(&g);
                let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                warm_up_and_corrupt_clocks(&mut sim, k, period, &mut rng);
                ctx.attach("e11-faults-sdr", sc.index, &mut sim);
                let out = sim
                    .execution()
                    .cap(sc.step_cap)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                ctx.collect(&mut sim);
                (out.reached, out.rounds_at_hit, out.moves_at_hit)
            }
            "cfg-unison" => {
                let cfg = CfgUnison::for_graph(&g);
                let k_cfg = cfg.period();
                let init = cfg.initial_config(&g);
                let mut sim = Simulator::new(&g, cfg, init, sc.daemon.clone(), sim_seed);
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                ssr_runtime::faults::corrupt_random(&mut sim, k as usize, &mut rng, |_, r| {
                    r.below(k_cfg)
                });
                sim.reset_stats();
                ctx.attach("e11-faults-cfg", sc.index, &mut sim);
                let out = sim
                    .execution()
                    .cap(sc.step_cap)
                    .until(|gr, st| spec::safety_holds(gr, st, k_cfg))
                    .run();
                ctx.collect(&mut sim);
                (out.reached, out.rounds_at_hit, out.moves_at_hit)
            }
            "mono-reset" => {
                let mono = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
                let check = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
                let init = mono.initial_config(&g);
                let mut sim = Simulator::new(&g, mono, init, sc.daemon.clone(), sim_seed);
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                ssr_runtime::faults::corrupt_random(&mut sim, k as usize, &mut rng, |_, r| {
                    MonoState {
                        phase: Phase::Idle,
                        inner: r.below(period),
                    }
                });
                sim.reset_stats();
                ctx.attach("e11-faults-mono", sc.index, &mut sim);
                let out = sim
                    .execution()
                    .cap(sc.step_cap)
                    .until(|gr, st| check.is_normal_config(gr, st))
                    .run();
                ctx.collect(&mut sim);
                (out.reached, out.rounds_at_hit, out.moves_at_hit)
            }
            _ => unreachable!("algorithm axis holds the three unison systems"),
        };
        E11Row {
            family: sc.algorithm.label(),
            k,
            reached,
            rounds,
            moves,
        }
    });
    let mut table = Table::new([
        "k faults",
        "sdr rounds",
        "sdr moves",
        "cfg rounds",
        "cfg moves",
        "mono rounds",
        "mono moves",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: vec![n],
        ..ExpKpi::default()
    };
    for amount in ks {
        let k = amount.resolve(n as u64);
        let find = |family: &ssr_campaign::AlgorithmSpec| {
            rows.iter()
                .find(|r| r.k == k && r.family == family.label())
                .expect("one row per (k, family)")
        };
        let sdr = find(&families::unison_sdr());
        let cfg = find(&families::cfg_unison());
        let mono = find(&families::mono_reset());
        pass &= sdr.reached && cfg.reached && mono.reached;
        kpi.rounds = kpi.rounds.max(sdr.rounds);
        kpi.moves = kpi.moves.max(sdr.moves);
        kpi.bound = kpi.bound.max(3 * n as u64);
        table.row_vec(vec![
            k.to_string(),
            fmt_u(sdr.rounds),
            fmt_u(sdr.moves),
            fmt_u(cfg.rounds),
            fmt_u(cfg.moves),
            fmt_u(mono.rounds),
            fmt_u(mono.moves),
        ]);
    }
    ExpResult::new(
        "E11",
        "Recovery from k corrupted clocks on a legitimate ring: SDR vs CFG vs mono-initiator",
        table,
        pass,
        vec![format!("ring n = {n}; clock-only corruption, seeds fixed")],
        kpi,
    )
}

/// E13 — exhaustive schedule-space verification on the tiny suite:
/// `ssr-explore` walks *every* distributed-daemon schedule from a
/// fixed seed set of initial configurations, proving closure and
/// convergence mechanically and reporting the **exact** worst-case
/// moves/rounds. The exact values must sit below the paper's
/// closed-form bounds, dominate the stochastic campaign maxima over
/// the same initial configurations, and come with witness schedules
/// that replay byte-identically through `Execution`.
pub fn e13_exhaustive(p: Profile, ctx: &ExpCtx) -> ExpResult {
    let sizes = match p {
        Profile::Quick => vec![4, 5],
        Profile::Full => vec![4, 5, 6],
    };
    let topologies = vec![
        TopologySpec::Path,
        TopologySpec::Ring,
        TopologySpec::Star,
        TopologySpec::Caterpillar,
        TopologySpec::Wheel,
    ];
    let campaign = Campaign::new("e13-exhaustive")
        .topologies(topologies.clone())
        .sizes(sizes.clone())
        .algorithms(vec![
            families::sdr_agreement(2),
            families::unison_sdr(),
            families::fga_sdr(PresetSpec::Domination),
        ])
        .daemons(vec![Daemon::Central]) // the explorer covers all classes itself
        .inits(vec![InitPlan::Arbitrary])
        .trials(1)
        .step_cap(p.step_cap())
        .seed(0xE13);
    // The outer grid is already parallel; each exploration stays
    // sequential (the determinism property of the explorer itself is
    // pinned by its own tests).
    let opts = ScenarioExploreOptions::default();
    let rows = ctx.run_with(&campaign, |sc| {
        let exact = explore_scenario(&sc, &opts)?;
        let stoch = stochastic_max(&sc, &opts)?;
        Some((exact, stoch))
    });
    let mut table = Table::new([
        "topology",
        "algorithm",
        "n",
        "states",
        "exact moves",
        "move bound",
        "exact rounds",
        "round bound",
        "campaign max m/r",
        "verified",
    ]);
    let mut pass = true;
    let mut kpi = ExpKpi {
        sizes: sizes.clone(),
        ..ExpKpi::default()
    };
    for row in rows.iter().flatten() {
        let (exact, stoch) = row;
        let dominated = stoch.moves <= exact.exact_moves && stoch.rounds <= exact.exact_rounds;
        let row_ok = exact.ok() && dominated && stoch.all_reached;
        pass &= row_ok;
        kpi.rounds = kpi.rounds.max(exact.exact_rounds);
        kpi.moves = kpi.moves.max(exact.exact_moves);
        kpi.bound = kpi.bound.max(exact.bound_rounds.unwrap_or(0));
        table.row_vec(vec![
            exact.topology.clone(),
            exact.algorithm.clone(),
            exact.nodes.to_string(),
            exact.states.to_string(),
            fmt_u(exact.exact_moves),
            exact.bound_moves.map_or("—".into(), fmt_u),
            fmt_u(exact.exact_rounds),
            exact.bound_rounds.map_or("—".into(), fmt_u),
            format!("{}/{}", stoch.moves, stoch.rounds),
            if row_ok {
                "yes".into()
            } else if let Some(err) = &exact.error {
                format!("NO ({err})")
            } else {
                "NO".into()
            },
        ]);
    }
    ExpResult::new(
        "E13",
        "Exhaustive schedule space on tiny graphs: exact worst cases ≤ closed-form bounds, \
         stochastic maxima ≤ exact, witnesses replay exactly",
        table,
        pass,
        vec![
            "exact worst cases quantify over every distributed-daemon schedule from the seed \
             set of initial configurations (γ_init, broadcast chain, tear, adversarial \
             samples); campaign max m/r is the observed stochastic maximum over the same \
             initial configurations"
                .into(),
        ],
        kpi,
    )
}

/// A catalog entry: group id, one-line claim, the algorithm-family
/// registry keys the group sweeps, and the runner.
pub struct ExpEntry {
    /// Group id (e.g. `"E1+E2"`).
    pub id: &'static str,
    /// One-line description of the claim under test.
    pub claim: &'static str,
    /// Registry keys of the families this group selects through the
    /// standard registry (what `--algorithms` filters on).
    pub families: &'static [&'static str],
    /// Computes the group under an execution context.
    pub run: fn(Profile, &ExpCtx) -> ExpResult,
}

impl ExpEntry {
    /// Whether this group sweeps at least one of `specs`' families.
    pub fn uses_any_family(&self, specs: &[ssr_campaign::AlgorithmSpec]) -> bool {
        specs
            .iter()
            .any(|spec| self.families.contains(&spec.family.as_str()))
    }
}

/// The experiment groups in presentation order, without computing
/// anything — callers can filter by id and run only what they need.
pub fn catalog() -> Vec<ExpEntry> {
    vec![
        ExpEntry {
            id: "E1+E2",
            families: &["sdr-agreement"],
            claim: "SDR recovery ≤ 3n rounds (Cor. 5) and ≤ 3n+3 SDR moves per process (Cor. 4)",
            run: e1_e2_sdr_bounds,
        },
        ExpEntry {
            id: "E3",
            families: &["sdr-agreement"],
            claim: "Alive-root monotonicity, ≤ n+1 segments, segment rule grammar (Thm 3, Rem 5, Cor 3)",
            run: e3_segments,
        },
        ExpEntry {
            id: "E4+E5",
            families: &["unison-sdr", "cfg-unison"],
            claim: "U ∘ SDR ≤ 3n rounds (Thm 7) and ≤ (3D+3)n²+(3D+1)(n−1)+1 moves (Thm 6), vs CFG",
            run: e4_e5_unison,
        },
        ExpEntry {
            id: "E6",
            families: &["unison-sdr"],
            claim: "Unison spec after stabilization: zero safety violations, all clocks advance",
            run: e6_unison_spec,
        },
        ExpEntry {
            id: "E7",
            families: &["fga"],
            claim: "Standalone FGA from γ_init: ≤ 5n+4 rounds (Cor. 12), ≤ 16Δm+36m+24n moves (Cor. 11)",
            run: e7_fga_standalone,
        },
        ExpEntry {
            id: "E8+E12",
            families: &["fga-sdr"],
            claim: "FGA ∘ SDR silent: ≤ 8n+4 rounds (Thm 14), ≤ (n+1)(16mΔ+36m+27n) moves (Thm 12)",
            run: e8_fga_sdr,
        },
        ExpEntry {
            id: "E9",
            families: &["fga-sdr"],
            claim: "The six §6.1 (f,g)-alliance reductions verified against the classical definitions",
            run: e9_presets,
        },
        ExpEntry {
            id: "E10",
            families: &["unison-sdr", "cfg-unison"],
            claim: "Ablation: cooperative vs uncoordinated local resets on clock-tear workloads",
            run: e10_ablation,
        },
        ExpEntry {
            id: "E11",
            families: &["unison-sdr", "cfg-unison", "mono-reset"],
            claim: "Recovery from k corrupted clocks on a ring: SDR vs CFG vs mono-initiator",
            run: e11_faults,
        },
        ExpEntry {
            id: "E13",
            families: &["sdr-agreement", "unison-sdr", "fga-sdr"],
            claim: "Exhaustive schedule space (tiny graphs): exact worst cases ≤ closed-form bounds",
            run: e13_exhaustive,
        },
    ]
}

/// Runs every experiment group in catalog order.
pub fn all(p: Profile, ctx: &ExpCtx) -> Vec<ExpResult> {
    catalog().into_iter().map(|e| (e.run)(p, ctx)).collect()
}

/// One experiment's report exactly as the `experiments` binary prints
/// it (markdown heading, table, notes, verdict line).
pub fn render_result(r: &ExpResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "## {} — {}\n", r.id, r.title).unwrap();
    write!(out, "{}", r.table).unwrap();
    for note in &r.notes {
        writeln!(out, "\n> {note}").unwrap();
    }
    writeln!(
        out,
        "\n**{}**\n",
        if r.pass {
            "PASS — all paper bounds hold"
        } else {
            "FAIL — a bound was violated"
        }
    )
    .unwrap();
    out
}

/// The summary footer the `experiments` binary prints after a table
/// run.
pub fn render_footer(results: &[ExpResult]) -> String {
    format!(
        "=== {} experiment group(s): {} ===\n",
        results.len(),
        if results.iter().all(|r| r.pass) {
            "ALL PASS"
        } else {
            "FAILURES PRESENT"
        }
    )
}

/// One experiment's headline JSON object (the `groups[]` entry of the
/// results file).
pub fn result_json(r: &ExpResult) -> ssr_campaign::output::Json {
    use ssr_campaign::output::Json;
    Json::obj([
        ("id", Json::str(r.id)),
        ("title", Json::str(&r.title)),
        (
            "sizes",
            Json::Arr(r.kpi.sizes.iter().map(|&s| Json::U64(s as u64)).collect()),
        ),
        ("rounds", Json::U64(r.kpi.rounds)),
        ("moves", Json::U64(r.kpi.moves)),
        ("bound", Json::U64(r.kpi.bound)),
        ("verdict", Json::str(if r.pass { "pass" } else { "fail" })),
    ])
}

/// The whole `BENCH_RESULTS.json` document for a set of results —
/// shared by the experiments binary and the byte-compatibility pin in
/// `tests/golden_compat.rs`. `selection_all` marks an unfiltered run.
pub fn results_json(
    profile: Profile,
    selection_all: bool,
    results: &[ExpResult],
) -> ssr_campaign::output::Json {
    use ssr_campaign::output::Json;
    let all_pass = results.iter().all(|r| r.pass);
    Json::obj([
        ("schema", Json::str("ssr-bench-results/v1")),
        (
            "profile",
            Json::str(match profile {
                Profile::Quick => "quick",
                Profile::Full => "full",
            }),
        ),
        (
            "selection",
            if selection_all {
                Json::str("all")
            } else {
                Json::Arr(results.iter().map(|r| Json::str(r.id)).collect())
            },
        ),
        ("all_pass", Json::Bool(all_pass)),
        (
            "groups",
            Json::Arr(results.iter().map(result_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(threads: usize) -> ExpCtx {
        ExpCtx::new(threads)
    }

    #[test]
    fn e1_e2_quick_pass() {
        let r = e1_e2_sdr_bounds(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E1+E2");
        assert!(r.pass, "{}", r.table);
        assert!(r.kpi.bound > 0 && !r.kpi.sizes.is_empty());
    }

    #[test]
    fn e3_quick_pass() {
        let r = e3_segments(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E3");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e4_e5_quick_pass() {
        let r = e4_e5_unison(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E4+E5");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e6_quick_pass() {
        let r = e6_unison_spec(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E6");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e7_quick_pass() {
        let r = e7_fga_standalone(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E7");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e8_quick_pass() {
        let r = e8_fga_sdr(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E8+E12");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e9_quick_pass() {
        let r = e9_presets(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E9");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e10_quick_pass() {
        let r = e10_ablation(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E10");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e11_quick_pass() {
        let r = e11_faults(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E11");
        assert!(r.pass, "{}", r.table);
    }

    #[test]
    fn e13_quick_pass() {
        let r = e13_exhaustive(Profile::Quick, &ctx(2));
        assert_eq!(r.id, "E13");
        assert!(r.pass, "{}", r.table);
        assert!(r.kpi.bound > 0);
    }

    #[test]
    fn catalog_covers_every_group_once_with_claims() {
        let entries = catalog();
        let ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            ["E1+E2", "E3", "E4+E5", "E6", "E7", "E8+E12", "E9", "E10", "E11", "E13"]
        );
        assert!(entries.iter().all(|e| !e.claim.is_empty()));
    }

    /// The acceptance criterion of the campaign port: experiment output
    /// is identical no matter how many workers drained the grid.
    #[test]
    fn experiments_are_thread_invariant() {
        for run in [e1_e2_sdr_bounds, e10_ablation, e11_faults, e13_exhaustive] {
            let a = run(Profile::Quick, &ctx(1));
            let b = run(Profile::Quick, &ctx(4));
            assert_eq!(a.table.to_string(), b.table.to_string());
            assert_eq!(a.pass, b.pass);
            assert_eq!(a.notes, b.notes);
        }
    }
}
