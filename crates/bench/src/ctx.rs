//! [`ExpCtx`]: the execution context threaded through every experiment
//! group — worker count plus the observability channels selected on
//! the `experiments` command line (`--progress`, `--metrics`,
//! `--trace`, `--report`).
//!
//! The context is shared (`&ExpCtx`) across concurrently-running
//! scenario closures, so its channels are engineered for that shape:
//! progress goes through one coarse mutex (per scenario, never per
//! step), metrics accumulate per measured run and merge under a mutex
//! once per run, and trace files are independent per scenario. With no
//! channel enabled every method degrades to the bare engine call —
//! experiments pay nothing for the seam.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ssr_campaign::obs::scenario_label;
use ssr_campaign::{
    engine, CacheLayer, Campaign, CampaignObs, CheckpointWriter, RecordCache, Scenario,
    ScenarioRecord,
};
use ssr_obs::metrics::{MetricsSet, MetricsSnapshot};
use ssr_obs::pipeline::{CompositeSink, PipelineMetrics};
use ssr_obs::progress::{Progress, StderrProgress};
use ssr_obs::trace::JsonlSink;
use ssr_runtime::{Algorithm, Simulator};

/// Execution context for one `experiments` invocation.
pub struct ExpCtx {
    threads: usize,
    progress: bool,
    metrics: Option<Mutex<MetricsSet>>,
    /// Whether folded metrics include per-phase wall time
    /// (nondeterministic values; the default for `--metrics`, since
    /// phase breakdown is its point).
    phase_timing: bool,
    trace_dir: Option<PathBuf>,
    report_dir: Option<PathBuf>,
    /// The content-addressed store behind `--checkpoint`: fingerprint
    /// cache plus the journal it resumes from, and how many entries
    /// the journal replayed at open.
    store: Option<(RecordCache, CheckpointWriter, usize)>,
    /// Campaign records accumulated for the report, as
    /// `(campaign id, JSONL text)` — the exact bytes `--report` will
    /// persist, so the report inherits the records' thread-count
    /// determinism.
    report_rows: Mutex<Vec<(String, String)>>,
}

impl ExpCtx {
    /// A context with all observability channels off.
    pub fn new(threads: usize) -> Self {
        ExpCtx {
            threads,
            progress: false,
            metrics: None,
            phase_timing: false,
            trace_dir: None,
            report_dir: None,
            store: None,
            report_rows: Mutex::new(Vec::new()),
        }
    }

    /// Campaign worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Streams per-campaign completion to stderr.
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Accumulates pipeline metrics across all experiment groups;
    /// `timed` additionally folds `phase.*.nanos` wall-time
    /// histograms.
    #[must_use]
    pub fn with_metrics(mut self, timed: bool) -> Self {
        self.metrics = Some(Mutex::new(MetricsSet::new()));
        self.phase_timing = timed;
        self
    }

    /// Writes per-scenario JSONL traces under
    /// `dir/<campaign-id>/trace-<index>.jsonl` (deterministic: no
    /// timing events in the files).
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.trace_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Accumulates every drained campaign's records and, on
    /// [`ExpCtx::write_report`], persists them (plus the metrics
    /// snapshot) under `dir` and renders `dir/report.html`. Only
    /// campaigns drained through [`ExpCtx::run`] appear — custom
    /// runners ([`ExpCtx::run_with`]) produce no [`ScenarioRecord`]s
    /// to report.
    #[must_use]
    pub fn with_report_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.report_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Resumes from (and journals into) the `ssr-checkpoint/v1` file
    /// at `path`: existing entries are replayed into a fingerprint
    /// cache so already-completed scenarios are served without
    /// simulating, and every fresh record is appended as it completes.
    /// A torn final line (killed process) is dropped and healed — the
    /// crash-resume path is the normal path.
    pub fn with_checkpoint(mut self, path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let cache = RecordCache::new();
        let replayed = ssr_campaign::checkpoint::replay_into(path, &cache)?;
        let writer = CheckpointWriter::open(path)
            .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
        self.store = Some((cache, writer, replayed));
        Ok(self)
    }

    /// Entries replayed from the checkpoint at open (`None` when
    /// `--checkpoint` is off).
    pub fn replayed(&self) -> Option<usize> {
        self.store.as_ref().map(|(_, _, n)| *n)
    }

    fn cache_layer(&self) -> Option<CacheLayer<'_>> {
        self.store.as_ref().map(|(cache, writer, _)| CacheLayer {
            cache,
            checkpoint: Some(writer),
        })
    }

    fn wants_obs(&self) -> bool {
        self.progress || self.metrics.is_some() || self.trace_dir.is_some()
    }

    fn campaign_trace_dir(&self, campaign_id: &str) -> Option<PathBuf> {
        let dir = self.trace_dir.as_ref()?.join(campaign_id);
        // A directory that cannot be created degrades to "no traces":
        // observability must never fail the harness.
        std::fs::create_dir_all(&dir).ok()?;
        Some(dir)
    }

    /// Remembers `records` for the report channel (no-op when
    /// `--report` is off).
    fn note_report(&self, campaign_id: &str, records: &[ScenarioRecord]) {
        if self.report_dir.is_none() || records.is_empty() {
            return;
        }
        self.report_rows.lock().expect("report poisoned").push((
            campaign_id.to_string(),
            ssr_campaign::output::jsonl(records),
        ));
    }

    /// Drains `campaign` through the standard registry —
    /// [`engine::run`] with whatever channels this context enables.
    pub fn run(&self, campaign: &Campaign) -> Vec<ScenarioRecord> {
        let layer = self.cache_layer();
        if !self.wants_obs() && layer.is_none() {
            let records = engine::run(campaign, self.threads);
            self.note_report(campaign.id(), &records);
            return records;
        }
        let mut obs = CampaignObs::new();
        if self.progress {
            obs = obs.with_progress(Box::new(StderrProgress::new()));
        }
        if self.metrics.is_some() {
            obs = if self.phase_timing {
                obs.with_timed_metrics()
            } else {
                obs.with_metrics()
            };
        }
        if let Some(dir) = self.campaign_trace_dir(campaign.id()) {
            obs = obs.with_trace_dir(dir);
        }
        let records = match layer {
            Some(layer) => engine::run_obs_cached(campaign, self.threads, &mut obs, layer),
            None => engine::run_obs(campaign, self.threads, &mut obs),
        };
        if let (Some(agg), Some(folded)) = (&self.metrics, obs.take_metrics()) {
            agg.lock().expect("metrics poisoned").merge(&folded);
        }
        self.note_report(campaign.id(), &records);
        records
    }

    /// Drains `campaign` through a custom runner — [`engine::run_with`]
    /// plus progress reporting. Runners that drive a [`Simulator`]
    /// directly attach the per-scenario trace/metrics channels with
    /// [`ExpCtx::attach`] / [`ExpCtx::collect`].
    pub fn run_with<R, F>(&self, campaign: &Campaign, runner: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Scenario) -> R + Sync,
    {
        if !self.progress {
            return engine::run_with(campaign, self.threads, runner);
        }
        let mut reporter = StderrProgress::new();
        reporter.begin(campaign.len());
        let progress = Mutex::new(&mut reporter);
        let out = engine::run_with(campaign, self.threads, |sc| {
            let index = sc.index;
            let label = scenario_label(&sc);
            let r = runner(sc);
            progress
                .lock()
                .expect("progress poisoned")
                .item_done(index, &label, true);
            r
        });
        reporter.finish();
        out
    }

    /// Installs this context's trace/metrics channels on a directly
    /// driven simulator, for scenario `index` of `campaign_id`. Pair
    /// with [`ExpCtx::collect`] after the measured execution.
    pub fn attach<A: Algorithm>(
        &self,
        campaign_id: &str,
        index: usize,
        sim: &mut Simulator<'_, A>,
    ) {
        let metrics = self.metrics.as_ref().map(|_| {
            if self.phase_timing {
                PipelineMetrics::new()
            } else {
                PipelineMetrics::without_timing()
            }
        });
        let file = self
            .campaign_trace_dir(campaign_id)
            .and_then(|dir| JsonlSink::create(dir.join(format!("trace-{index:05}.jsonl"))).ok());
        let sink = CompositeSink::new(metrics, file);
        if !sink.is_empty() {
            sim.set_trace_sink(Box::new(sink));
        }
    }

    /// Recovers the sink installed by [`ExpCtx::attach`] and folds its
    /// metrics into the context aggregate. No-op when nothing was
    /// attached.
    pub fn collect<A: Algorithm>(&self, sim: &mut Simulator<'_, A>) {
        let Some(mut sink) = sim.take_trace_sink() else {
            return;
        };
        sink.flush();
        let Some(composite) = sink
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CompositeSink>())
        else {
            return;
        };
        if let (Some(folded), Some(agg)) = (composite.take_metrics(), &self.metrics) {
            agg.lock().expect("metrics poisoned").merge(&folded);
        }
    }

    /// The merged metrics accumulated so far (`None` when `--metrics`
    /// is off).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics
            .as_ref()
            .map(|m| m.lock().expect("metrics poisoned").snapshot())
    }

    /// Persists everything the report channel accumulated — one
    /// `campaign-<id>.jsonl` per drained campaign, `metrics.json` when
    /// `--metrics` is on — under the `--report` directory, then
    /// renders `report.html` over the whole directory (including any
    /// traces `--trace` wrote beneath it). Returns the report path, or
    /// `Ok(None)` when the channel is off.
    pub fn write_report(&self) -> Result<Option<PathBuf>, String> {
        let Some(dir) = &self.report_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for (id, jsonl) in self.report_rows.lock().expect("report poisoned").iter() {
            let path = dir.join(format!("campaign-{id}.jsonl"));
            std::fs::write(&path, jsonl)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        if let Some(snapshot) = self.metrics_snapshot() {
            let path = dir.join("metrics.json");
            std::fs::write(&path, format!("{}\n", snapshot.to_json()))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        let artifacts = ssr_report::load_dir(dir)?;
        let html = ssr_report::render(&artifacts);
        let path = dir.join("report.html");
        std::fs::write(&path, html).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_campaign::{families, InitPlan, TopologySpec};
    use ssr_runtime::Daemon;

    fn tiny(id: &str) -> Campaign {
        Campaign::new(id)
            .topologies(vec![TopologySpec::Ring])
            .sizes(vec![8])
            .algorithms(vec![families::unison_sdr()])
            .daemons(vec![Daemon::Central])
            .inits(vec![InitPlan::Arbitrary])
            .trials(2)
            .step_cap(500_000)
    }

    #[test]
    fn bare_context_matches_the_engine() {
        let c = tiny("ctx-bare");
        let ctx = ExpCtx::new(2);
        assert_eq!(ctx.run(&c), engine::run(&c, 2));
        assert_eq!(ctx.metrics_snapshot(), None);
    }

    #[test]
    fn metrics_context_aggregates_without_changing_records() {
        let c = tiny("ctx-metrics");
        let ctx = ExpCtx::new(2).with_metrics(false);
        let records = ctx.run(&c);
        assert_eq!(records, engine::run(&c, 2));
        let snap = ctx.metrics_snapshot().unwrap();
        assert!(snap.get("pipeline.steps").is_some(), "{}", snap.to_json());
        // A second campaign folds into the same aggregate.
        let more = tiny("ctx-metrics-2");
        ctx.run(&more);
        let grown = ctx.metrics_snapshot().unwrap();
        let steps = |s: &MetricsSnapshot| match s.get("pipeline.steps") {
            Some(ssr_obs::metrics::Metric::Counter(v)) => *v,
            other => panic!("unexpected {other:?}"),
        };
        assert!(steps(&grown) > steps(&snap));
    }

    #[test]
    fn checkpoint_context_resumes_without_resimulating() {
        let dir = std::env::temp_dir().join(format!("ssr-ctx-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let c = tiny("ctx-ckpt");

        let cold_ctx = ExpCtx::new(2).with_checkpoint(&path).unwrap();
        assert_eq!(cold_ctx.replayed(), Some(0));
        let cold = cold_ctx.run(&c);
        drop(cold_ctx);

        // A fresh context over the same journal replays every record
        // and the rerun never touches the simulator (zero pipeline
        // steps in the metrics it folds).
        let warm_ctx = ExpCtx::new(2)
            .with_metrics(false)
            .with_checkpoint(&path)
            .unwrap();
        assert_eq!(warm_ctx.replayed(), Some(c.len()));
        let warm = warm_ctx.run(&c);
        assert_eq!(warm, cold, "resumed records are identical");
        let snap = warm_ctx.metrics_snapshot().unwrap();
        assert!(snap.get("pipeline.steps").is_none(), "{}", snap.to_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn attach_collect_round_trip_on_a_direct_simulator() {
        use ssr_core::{toys::Agreement, Sdr};
        use ssr_graph::generators;

        let dir = std::env::temp_dir().join(format!("ssr-ctx-test-{}", std::process::id()));
        let ctx = ExpCtx::new(1).with_metrics(false).with_trace_dir(&dir);
        let g = generators::ring(8);
        let algo = Sdr::new(Agreement::new(4));
        let init = algo.arbitrary_config(&g, 1);
        let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 2);
        ctx.attach("direct", 0, &mut sim);
        assert!(sim.has_trace_sink());
        sim.execution().cap(100_000).run();
        ctx.collect(&mut sim);
        assert!(!sim.has_trace_sink());
        let snap = ctx.metrics_snapshot().unwrap();
        assert!(snap.get("pipeline.steps").is_some());
        let trace = dir.join("direct").join("trace-00000.jsonl");
        let text = std::fs::read_to_string(&trace).unwrap();
        for line in text.lines() {
            ssr_obs::trace::validate_jsonl_line(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
