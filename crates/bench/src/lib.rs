//! Experiment harness for the SDR reproduction.
//!
//! Every proven bound / comparison in the paper maps to one experiment
//! (E1–E12, mapped to paper sections in `DESIGN.md` §3 at the
//! repository root). Each experiment is a `ssr-campaign` scenario grid
//! drained by the parallel batch engine — byte-identical output for
//! any worker count — plus a fold turning the records into a table.
//! The [`experiments`] module computes each table; the `experiments`
//! binary prints them (`--list`, `--threads N`, `--format table|json`)
//! and the criterion benches in `benches/` measure wall-clock time of
//! the same workloads.
//!
//! All experiments are deterministic given their seeds and run in two
//! profiles: `quick` (small sizes, used by `cargo test`) and full
//! (`cargo run -p ssr-bench --bin experiments --release`).

#![forbid(unsafe_code)]

pub mod ctx;
pub mod experiments;
pub mod workloads;

pub use ctx::ExpCtx;
pub use experiments::{ExpEntry, ExpKpi, ExpResult, Profile};
