//! The campaign-report and perf-history CLI over `ssr-report`.
//!
//! Usage:
//!
//! ```text
//! # Render one artifact directory as a self-contained HTML page:
//! cargo run -p ssr-bench --bin report -- render DIR [--out PATH]
//!
//! # Append a BENCH_SCALE.json sweep to the perf-history store:
//! cargo run -p ssr-bench --bin report -- record \
//!     --scale BENCH_SCALE.json --history BENCH_HISTORY.jsonl \
//!     --sha $(git rev-parse HEAD) --host ci-x86_64
//!
//! # Gate: compare the newest history entry against a baseline.
//! cargo run -p ssr-bench --bin report -- check \
//!     --history BENCH_HISTORY.jsonl [--baseline SHA] \
//!     [--throughput-tol 0.15] [--phase-tol 0.25]
//! ```
//!
//! `render` is a pure function of the artifact bytes — the HTML is
//! byte-identical for a given artifact set, whatever thread count
//! produced it. `record` never reads ambient state: the git SHA and
//! host fingerprint are required flags, so a history file says exactly
//! what was measured where. `check` compares the *last* entry against
//! the baseline (default: the *first* entry; `--baseline SHA` selects
//! another) and exits 1 when any tolerance band trips — the CI
//! regression tripwire. Tolerance semantics are in `DESIGN.md` §12.
//!
//! Exit codes: 0 ok, 1 regression (or failed render), 2 usage error.

use std::path::Path;

use ssr_report::history::{self, Tolerance};

fn usage() -> ! {
    eprintln!(
        "usage: report render DIR [--out PATH]\n\
                report record --scale PATH --history PATH --sha SHA --host HOST\n\
                report check --history PATH [--baseline SHA] [--throughput-tol F] [--phase-tol F]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn frac_flag(args: &[String], name: &str) -> Option<f64> {
    let v = flag_value(args, name)?;
    match v.parse::<f64>() {
        Ok(f) if (0.0..10.0).contains(&f) => Some(f),
        _ => fail(&format!("{name} needs a fraction (e.g. 0.15), got {v:?}")),
    }
}

fn cmd_render(args: &[String]) {
    let dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| usage());
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("{dir}/report.html"));
    let artifacts = match ssr_report::load_dir(Path::new(dir)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let html = ssr_report::render(&artifacts);
    if let Err(e) = std::fs::write(&out, html) {
        fail(&format!("cannot write {out}: {e}"));
    }
    println!("report written to {out}");
}

fn cmd_record(args: &[String]) {
    let scale_path = flag_value(args, "--scale").unwrap_or_else(|| "BENCH_SCALE.json".into());
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "BENCH_HISTORY.jsonl".into());
    // Identity is caller-passed, never ambient: a history line must
    // say exactly what was measured where, reproducibly.
    let Some(sha) = flag_value(args, "--sha") else {
        fail("record needs --sha (e.g. $(git rev-parse HEAD))")
    };
    let Some(host) = flag_value(args, "--host") else {
        fail("record needs --host (a stable host fingerprint)")
    };
    let text = std::fs::read_to_string(&scale_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {scale_path}: {e}")));
    let doc = match ssr_report::reader::parse_scale_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {scale_path}: {e}");
            std::process::exit(1);
        }
    };
    let entry = history::entry_from_scale(&doc, &sha, &host, &scale_path);
    let line = history::entry_to_json_line(&entry);
    let mut existing = std::fs::read_to_string(&history_path).unwrap_or_default();
    if !existing.is_empty() && !existing.ends_with('\n') {
        existing.push('\n');
    }
    existing.push_str(&line);
    existing.push('\n');
    if let Err(e) = std::fs::write(&history_path, existing) {
        fail(&format!("cannot write {history_path}: {e}"));
    }
    println!(
        "recorded {} cell(s) from {scale_path} as {sha} ({host}) in {history_path}",
        entry.cells.len()
    );
}

fn cmd_check(args: &[String]) {
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "BENCH_HISTORY.jsonl".into());
    let tol = Tolerance {
        throughput_frac: frac_flag(args, "--throughput-tol")
            .unwrap_or(Tolerance::default().throughput_frac),
        phase_frac: frac_flag(args, "--phase-tol").unwrap_or(Tolerance::default().phase_frac),
    };
    let text = std::fs::read_to_string(&history_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {history_path}: {e}")));
    let entries = match history::parse_history_jsonl(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {history_path}: {e}");
            std::process::exit(1);
        }
    };
    if entries.len() < 2 {
        eprintln!(
            "error: {history_path} has {} entry(ies); check needs a baseline and a current",
            entries.len()
        );
        std::process::exit(1);
    }
    let current = entries.last().expect("len checked");
    let baseline = match flag_value(args, "--baseline") {
        Some(sha) => entries
            .iter()
            .find(|e| e.sha == sha)
            .unwrap_or_else(|| fail(&format!("no history entry with sha {sha:?}"))),
        None => entries.first().expect("len checked"),
    };
    match history::check(baseline, current, &tol) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "check ok: {} vs baseline {} within tolerances (throughput -{:.0}%, phase +{:.0}%)",
                current.sha,
                baseline.sha,
                tol.throughput_frac * 100.0,
                tol.phase_frac * 100.0,
            );
        }
        Ok(regressions) => {
            eprintln!(
                "REGRESSION: {} vs baseline {} trips {} band(s):",
                current.sha,
                baseline.sha,
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "render" | "--render" => cmd_render(rest),
        "record" | "--record" => cmd_record(rest),
        "check" | "--check" => cmd_check(rest),
        "--help" | "-h" => usage(),
        other => fail(&format!("unknown command {other:?} (render|record|check)")),
    }
}
