//! The registry-wide soundness gate (`DESIGN.md` §11): certifies every
//! standard family against the pipeline's three assumptions — locality,
//! non-adjacent commutativity, and select-phase RNG discipline — plus
//! the rule-table hygiene lints, and emits the machine-readable
//! `ANALYSIS.json` report.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin analyze --               # gate standard families
//! cargo run -p ssr-bench --bin analyze -- --out ANALYSIS.json
//! cargo run -p ssr-bench --bin analyze -- --fixtures    # self-test on planted violations
//! cargo run -p ssr-bench --bin analyze -- --validate ANALYSIS.json
//! cargo run -p ssr-bench --bin analyze -- --threads 4
//! ```
//!
//! The default mode analyzes [`ssr_campaign::families::standard_families`]
//! and exits nonzero unless **every** label certifies clean (warnings
//! are reported but do not fail the gate). `--fixtures` inverts the
//! contract: it analyzes the planted-violation families shipped with
//! `ssr-analyze` and exits nonzero unless *both* defects are flagged —
//! if the analyzer ever goes blind, CI catches the gate itself
//! regressing. `--validate` re-parses an emitted report against the
//! `ssr-analysis/v1` schema. The report is byte-identical at any
//! `--threads` value.

use std::process::ExitCode;
use std::sync::Arc;

use ssr_analyze::analysis::{AnalyzeOptions, FindingKind};
use ssr_analyze::fixtures::{FarSightFamily, ShadowedPairFamily};
use ssr_analyze::{analyze_registry, human_table, to_json, validate_json};
use ssr_campaign::families::standard_families;
use ssr_runtime::family::FamilyRegistry;

struct Args {
    fixtures: bool,
    out: Option<String>,
    validate: Option<String>,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fixtures: false,
        out: None,
        validate: None,
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fixtures" => args.fixtures = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: analyze [--fixtures] [--out FILE] [--validate FILE] \
                     [--threads N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// `--validate FILE`: re-parse an emitted report against the schema.
fn validate_mode(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("analyze: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate_json(&text) {
        Ok(families) => {
            println!(
                "{path}: valid {} report, {families} families",
                ssr_analyze::SCHEMA
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("analyze: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--fixtures`: the gate's self-test. Exits nonzero unless both
/// planted violations are flagged as errors.
fn fixtures_mode(opts: &AnalyzeOptions, threads: usize) -> ExitCode {
    let mut registry = FamilyRegistry::new();
    registry.register(Arc::new(FarSightFamily));
    registry.register(Arc::new(ShadowedPairFamily));
    let report = analyze_registry(&registry, opts, threads);
    print!("{}", human_table(&report));
    let far_sight_caught = report.families.iter().any(|f| {
        f.family == "fixture-far-sight"
            && f.findings().any(|x| x.kind == FindingKind::NonLocalGuard)
    });
    let shadowed_caught = report.families.iter().any(|f| {
        f.family == "fixture-shadowed-pair"
            && f.findings().any(|x| x.kind == FindingKind::ShadowedRule)
    });
    if far_sight_caught && shadowed_caught && !report.certified() {
        println!("self-test ok: both planted violations flagged");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "analyze: self-test FAILED (far-sight caught: {far_sight_caught}, \
             shadowed caught: {shadowed_caught}) — the gate has gone blind"
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let opts = AnalyzeOptions::default();
    if let Some(path) = &args.validate {
        return validate_mode(path);
    }
    if args.fixtures {
        return fixtures_mode(&opts, args.threads);
    }

    let registry = standard_families();
    let report = analyze_registry(&registry, &opts, args.threads);
    print!("{}", human_table(&report));
    let json = to_json(&report);
    if let Err(e) = validate_json(&json) {
        // The emitter and validator ship together; disagreement is a bug.
        eprintln!("analyze: emitted report fails own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("analyze: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if report.certified() {
        println!("certified: all {} families clean", report.families.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("analyze: soundness violations found (see table above)");
        ExitCode::FAILURE
    }
}
