//! Prints every reproduction table (E1–E12, mapped to paper claims in
//! `DESIGN.md` §3 at the repository root), running the sweeps on the
//! `ssr-campaign` parallel engine.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin experiments --release                 # all tables
//! cargo run -p ssr-bench --bin experiments --release -- e4          # a subset
//! cargo run -p ssr-bench --bin experiments --release -- --only E4,E13 # explicit subset
//! cargo run -p ssr-bench --bin experiments --release -- --quick     # small sweep
//! cargo run -p ssr-bench --bin experiments --release -- --list      # ids + claims
//! cargo run -p ssr-bench --bin experiments --release -- --threads 8 # worker count
//! cargo run -p ssr-bench --bin experiments --release -- --format json
//! ```
//!
//! `--only E<k>[,E<k>...]` is the flag complement of `--list`: it
//! selects experiment groups by id (case-insensitive, `+`-joined group
//! ids match any part), exactly like bare positional ids, but is
//! explicit enough for CI pipelines.
//!
//! Results are byte-identical for any `--threads` value (the campaign
//! engine's determinism contract). `--format json` additionally writes
//! a `BENCH_`-style results file so performance trajectories can be
//! tracked across checkouts: unfiltered runs write `BENCH_RESULTS.json`
//! (the whole-sweep trajectory record), subset runs only write when an
//! explicit `--out PATH` is given.

use ssr_bench::experiments::{self, ExpResult, Profile};
use ssr_campaign::output::Json;

fn print_result(r: &ExpResult) {
    println!("## {} — {}\n", r.id, r.title);
    print!("{}", r.table);
    for note in &r.notes {
        println!("\n> {note}");
    }
    println!(
        "\n**{}**\n",
        if r.pass {
            "PASS — all paper bounds hold"
        } else {
            "FAIL — a bound was violated"
        }
    );
}

fn result_json(r: &ExpResult) -> Json {
    Json::obj([
        ("id", Json::str(r.id)),
        ("title", Json::str(&r.title)),
        (
            "sizes",
            Json::Arr(r.kpi.sizes.iter().map(|&s| Json::U64(s as u64)).collect()),
        ),
        ("rounds", Json::U64(r.kpi.rounds)),
        ("moves", Json::U64(r.kpi.moves)),
        ("bound", Json::U64(r.kpi.bound)),
        ("verdict", Json::str(if r.pass { "pass" } else { "fail" })),
    ])
}

struct Cli {
    quick: bool,
    list: bool,
    json: bool,
    threads: usize,
    out: Option<String>,
    wanted: Vec<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        quick: false,
        list: false,
        json: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out: None,
        wanted: Vec::new(),
    };
    let mut table_format = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cli.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| format!("invalid --threads value {v:?}"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs table|json")?;
                match v.as_str() {
                    "table" => {
                        cli.json = false;
                        table_format = true;
                    }
                    "json" => cli.json = true,
                    other => return Err(format!("unknown format {other:?} (table|json)")),
                }
            }
            "--out" => cli.out = Some(it.next().ok_or("--out needs a path")?),
            "--only" => {
                let v = it.next().ok_or("--only needs E<k>[,E<k>...]")?;
                let ids: Vec<String> = v
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
                if ids.is_empty() {
                    return Err(format!("--only got no experiment ids in {v:?}"));
                }
                cli.wanted.extend(ids);
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unrecognized flag {flag:?} (known: --quick --list --only E<k>[,E<k>...] \
                     --threads N --format table|json --out PATH)"
                ));
            }
            id => cli.wanted.push(id.to_lowercase()),
        }
    }
    // A results path only makes sense for JSON output: imply it, but
    // reject the contradiction `--format table --out PATH` outright.
    if cli.out.is_some() {
        if table_format {
            return Err("--out requires --format json".into());
        }
        cli.json = true;
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if cli.list {
        for entry in experiments::catalog() {
            println!("{:<8} {}", entry.id, entry.claim);
        }
        return;
    }

    let profile = if cli.quick {
        Profile::Quick
    } else {
        Profile::Full
    };

    // Filter on the catalog's ids, then run only what was selected —
    // in the full profile an unfiltered run takes a long time.
    let selected: Vec<_> = experiments::catalog()
        .into_iter()
        .filter(|entry| {
            cli.wanted.is_empty()
                || entry
                    .id
                    .to_lowercase()
                    .split('+')
                    .any(|part| cli.wanted.iter().any(|w| w == part))
        })
        .collect();

    if selected.is_empty() {
        eprintln!(
            "error: no experiment group matches {:?} (try e1 … e13, or --list)",
            cli.wanted
        );
        std::process::exit(2);
    }

    let mut all_pass = true;
    let mut results = Vec::new();
    for entry in &selected {
        let r: ExpResult = (entry.run)(profile, cli.threads);
        if !cli.json {
            print_result(&r);
        }
        all_pass &= r.pass;
        results.push(r);
    }

    if cli.json {
        let doc = Json::obj([
            ("schema", Json::str("ssr-bench-results/v1")),
            (
                "profile",
                Json::str(if cli.quick { "quick" } else { "full" }),
            ),
            (
                "selection",
                if cli.wanted.is_empty() {
                    Json::str("all")
                } else {
                    Json::Arr(results.iter().map(|r| Json::str(r.id)).collect())
                },
            ),
            ("all_pass", Json::Bool(all_pass)),
            (
                "groups",
                Json::Arr(results.iter().map(result_json).collect()),
            ),
        ]);
        let text = doc.to_string();
        println!("{text}");
        // The default BENCH_RESULTS.json is the trajectory record for
        // the *whole* sweep — never clobber it with a subset run. An
        // explicit --out always wins.
        let out = match &cli.out {
            Some(path) => Some(path.as_str()),
            None if cli.wanted.is_empty() => Some("BENCH_RESULTS.json"),
            None => None,
        };
        if let Some(path) = out {
            if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("results written to {path}");
        } else {
            eprintln!("subset selection: results not written (pass --out PATH to save them)");
        }
    } else {
        println!(
            "=== {} experiment group(s): {} ===",
            selected.len(),
            if all_pass {
                "ALL PASS"
            } else {
                "FAILURES PRESENT"
            }
        );
    }
    if !all_pass {
        std::process::exit(1);
    }
}
