//! Prints every reproduction table (E1–E12, mapped to paper claims in
//! `DESIGN.md` §3 at the repository root).
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin experiments --release            # all tables
//! cargo run -p ssr-bench --bin experiments --release -- e4      # a subset
//! cargo run -p ssr-bench --bin experiments --release -- --quick # small sweep
//! ```

use ssr_bench::experiments::{self, ExpResult, Profile};

fn print_result(r: &ExpResult) {
    println!("## {} — {}\n", r.id, r.title);
    print!("{}", r.table);
    for note in &r.notes {
        println!("\n> {note}");
    }
    println!(
        "\n**{}**\n",
        if r.pass {
            "PASS — all paper bounds hold"
        } else {
            "FAIL — a bound was violated"
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(bad) = args.iter().find(|a| a.starts_with("--") && *a != "--quick") {
        eprintln!("error: unrecognized flag {bad:?} (known flags: --quick)");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    // Filter on the catalog's ids, then run only what was selected —
    // in the full profile an unfiltered run takes a long time.
    let selected: Vec<_> = experiments::catalog()
        .into_iter()
        .filter(|(id, _)| {
            wanted.is_empty()
                || id
                    .to_lowercase()
                    .split('+')
                    .any(|part| wanted.iter().any(|w| w == part))
        })
        .collect();

    if selected.is_empty() {
        eprintln!("error: no experiment group matches {wanted:?} (try e1 … e12)");
        std::process::exit(2);
    }

    let mut all_pass = true;
    for (_, run) in &selected {
        let r: ExpResult = run(profile);
        print_result(&r);
        all_pass &= r.pass;
    }
    println!(
        "=== {} experiment group(s): {} ===",
        selected.len(),
        if all_pass {
            "ALL PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    if !all_pass {
        std::process::exit(1);
    }
}
