//! Prints every reproduction table (E1–E12, mapped to paper claims in
//! `DESIGN.md` §3 at the repository root), running the sweeps on the
//! `ssr-campaign` parallel engine.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin experiments --release                 # all tables
//! cargo run -p ssr-bench --bin experiments --release -- e4          # a subset
//! cargo run -p ssr-bench --bin experiments --release -- --only E4,E13 # explicit subset
//! cargo run -p ssr-bench --bin experiments --release -- --quick     # small sweep
//! cargo run -p ssr-bench --bin experiments --release -- --list      # ids + claims
//! cargo run -p ssr-bench --bin experiments --release -- --threads 8 # worker count
//! cargo run -p ssr-bench --bin experiments --release -- --format json
//! cargo run -p ssr-bench --bin experiments --release -- --progress  # live stderr progress
//! cargo run -p ssr-bench --bin experiments --release -- --metrics M.json # pipeline metrics
//! cargo run -p ssr-bench --bin experiments --release -- --trace DIR # per-scenario JSONL traces
//! cargo run -p ssr-bench --bin experiments --release -- --report DIR # self-contained HTML report
//! cargo run -p ssr-bench --bin experiments --release -- --checkpoint J.jsonl # resumable sweep
//! ```
//!
//! `--progress` streams scenario completion (done/total, ETA, busy
//! workers) to stderr; `--metrics PATH` writes the merged pipeline
//! metrics snapshot (schema `ssr-metrics-v1`, human table on stderr);
//! `--trace DIR` writes one JSONL event trace per scenario under
//! `DIR/<campaign-id>/` (schema in `DESIGN.md` §10); `--report DIR`
//! persists the drained campaign records (plus metrics, plus whatever
//! traces land under the same directory) and renders a self-contained
//! `DIR/report.html` (`DESIGN.md` §12). All four are read-only:
//! tables and JSON results stay byte-identical.
//!
//! `--checkpoint PATH` makes the sweep resumable: completed scenarios
//! are journaled to the `ssr-checkpoint/v1` file at `PATH` as they
//! finish, and a restarted run replays the journal first, serving
//! already-done scenarios from the content-addressed cache (same
//! fingerprints and store as `ssr-serve`; `DESIGN.md` §13). The
//! journal never changes results — a resumed run's tables and JSON
//! are byte-identical to an uninterrupted one.
//!
//! `--only E<k>[,E<k>...]` is the flag complement of `--list`: it
//! selects experiment groups by id (case-insensitive, `+`-joined group
//! ids match any part), exactly like bare positional ids, but is
//! explicit enough for CI pipelines.
//!
//! `--algorithms <label,...>` filters by algorithm family instead of
//! group id: labels are parsed as registry handles (`unison-sdr`,
//! `sdr-agreement(8)`, `fga-sdr:domination(1,0)`, …), validated
//! against the standard family registry, and only experiment groups
//! sweeping at least one of the named families run. Both filters
//! compose (intersection).
//!
//! Results are byte-identical for any `--threads` value (the campaign
//! engine's determinism contract). `--format json` additionally writes
//! a `BENCH_`-style results file so performance trajectories can be
//! tracked across checkouts: unfiltered runs write `BENCH_RESULTS.json`
//! (the whole-sweep trajectory record), subset runs only write when an
//! explicit `--out PATH` is given.

use ssr_bench::ctx::ExpCtx;
use ssr_bench::experiments::{self, ExpResult, Profile};
use ssr_campaign::{families, AlgorithmSpec};

/// Splits a `--algorithms` list on commas that are *outside*
/// parentheses, so parameterized labels like `fga-sdr:domination(1,0)`
/// stay whole.
fn split_labels(v: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in v.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&v[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&v[start..]);
    out
}

struct Cli {
    quick: bool,
    list: bool,
    json: bool,
    threads: usize,
    out: Option<String>,
    wanted: Vec<String>,
    algorithms: Vec<AlgorithmSpec>,
    progress: bool,
    metrics: Option<String>,
    trace: Option<String>,
    report: Option<String>,
    checkpoint: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        quick: false,
        list: false,
        json: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out: None,
        wanted: Vec::new(),
        algorithms: Vec::new(),
        progress: false,
        metrics: None,
        trace: None,
        report: None,
        checkpoint: None,
    };
    let mut table_format = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cli.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| format!("invalid --threads value {v:?}"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs table|json")?;
                match v.as_str() {
                    "table" => {
                        cli.json = false;
                        table_format = true;
                    }
                    "json" => cli.json = true,
                    other => return Err(format!("unknown format {other:?} (table|json)")),
                }
            }
            "--out" => cli.out = Some(it.next().ok_or("--out needs a path")?),
            "--progress" => cli.progress = true,
            "--metrics" => cli.metrics = Some(it.next().ok_or("--metrics needs a path")?),
            "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a directory")?),
            "--report" => cli.report = Some(it.next().ok_or("--report needs a directory")?),
            "--checkpoint" => {
                cli.checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?);
            }
            "--algorithms" => {
                let v = it.next().ok_or("--algorithms needs <label,...>")?;
                let registry = families::default_registry();
                for label in split_labels(&v) {
                    let label = label.trim();
                    if label.is_empty() {
                        continue;
                    }
                    let spec: AlgorithmSpec = label.parse().expect("spec parsing is total");
                    // Bare registry keys (what --list prints, e.g.
                    // `sdr-agreement`) are as valid as fully
                    // parameterized labels; a label WITH parameters
                    // must actually resolve, so typo'd presets or
                    // rejected params fail here, not silently.
                    let valid = if spec.params_str().is_none() {
                        registry.contains(&spec.family)
                    } else {
                        registry.resolve(&spec).is_some()
                    };
                    if !valid {
                        return Err(format!(
                            "unknown algorithm family {label:?} (registered: {})",
                            registry.labels().join(", ")
                        ));
                    }
                    cli.algorithms.push(spec);
                }
                if cli.algorithms.is_empty() {
                    return Err(format!("--algorithms got no labels in {v:?}"));
                }
            }
            "--only" => {
                let v = it.next().ok_or("--only needs E<k>[,E<k>...]")?;
                let ids: Vec<String> = v
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
                if ids.is_empty() {
                    return Err(format!("--only got no experiment ids in {v:?}"));
                }
                cli.wanted.extend(ids);
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unrecognized flag {flag:?} (known: --quick --list --only E<k>[,E<k>...] \
                     --algorithms <label,...> --threads N --format table|json --out PATH \
                     --progress --metrics PATH --trace DIR --report DIR --checkpoint PATH)"
                ));
            }
            id => cli.wanted.push(id.to_lowercase()),
        }
    }
    // A results path only makes sense for JSON output: imply it, but
    // reject the contradiction `--format table --out PATH` outright.
    if cli.out.is_some() {
        if table_format {
            return Err("--out requires --format json".into());
        }
        cli.json = true;
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if cli.list {
        for entry in experiments::catalog() {
            println!(
                "{:<8} [{}] {}",
                entry.id,
                entry.families.join(", "),
                entry.claim
            );
        }
        return;
    }

    let profile = if cli.quick {
        Profile::Quick
    } else {
        Profile::Full
    };

    // Filter on the catalog's ids, then run only what was selected —
    // in the full profile an unfiltered run takes a long time.
    let selected: Vec<_> = experiments::catalog()
        .into_iter()
        .filter(|entry| {
            cli.wanted.is_empty()
                || entry
                    .id
                    .to_lowercase()
                    .split('+')
                    .any(|part| cli.wanted.iter().any(|w| w == part))
        })
        .filter(|entry| cli.algorithms.is_empty() || entry.uses_any_family(&cli.algorithms))
        .collect();

    if selected.is_empty() {
        eprintln!(
            "error: no experiment group matches ids {:?} / algorithms {:?} \
             (try e1 … e13, --algorithms unison-sdr, or --list)",
            cli.wanted,
            cli.algorithms.iter().map(|a| a.label()).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }

    let mut ctx = ExpCtx::new(cli.threads);
    if cli.progress {
        ctx = ctx.with_progress();
    }
    if cli.metrics.is_some() {
        ctx = ctx.with_metrics(true);
    }
    if let Some(dir) = &cli.trace {
        ctx = ctx.with_trace_dir(dir);
    }
    if let Some(dir) = &cli.report {
        ctx = ctx.with_report_dir(dir);
    }
    if let Some(path) = &cli.checkpoint {
        ctx = match ctx.with_checkpoint(path) {
            Ok(ctx) => ctx,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let n = ctx.replayed().unwrap_or(0);
        eprintln!("checkpoint: replayed {n} entries from {path}");
    }

    let mut all_pass = true;
    let mut results = Vec::new();
    for entry in &selected {
        let r: ExpResult = (entry.run)(profile, &ctx);
        if !cli.json {
            print!("{}", experiments::render_result(&r));
        }
        all_pass &= r.pass;
        results.push(r);
    }

    if let (Some(path), Some(snapshot)) = (&cli.metrics, ctx.metrics_snapshot()) {
        if let Err(e) = std::fs::write(path, format!("{}\n", snapshot.to_json())) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprint!("{}", snapshot.render_table());
        eprintln!("metrics written to {path}");
    }

    match ctx.write_report() {
        Ok(Some(path)) => eprintln!("report written to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    if cli.json {
        let unfiltered = cli.wanted.is_empty() && cli.algorithms.is_empty();
        let doc = experiments::results_json(profile, unfiltered, &results);
        let text = doc.to_string();
        println!("{text}");
        // The default BENCH_RESULTS.json is the trajectory record for
        // the *whole* sweep — never clobber it with a subset run. An
        // explicit --out always wins.
        let out = match &cli.out {
            Some(path) => Some(path.as_str()),
            None if cli.wanted.is_empty() && cli.algorithms.is_empty() => {
                Some("BENCH_RESULTS.json")
            }
            None => None,
        };
        if let Some(path) = out {
            if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("results written to {path}");
        } else {
            eprintln!("subset selection: results not written (pass --out PATH to save them)");
        }
    } else {
        print!("{}", experiments::render_footer(&results));
    }
    if !all_pass {
        std::process::exit(1);
    }
}
