//! Prints every reproduction table (E1–E12); `EXPERIMENTS.md` records a
//! full run of this binary.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin experiments --release            # all tables
//! cargo run -p ssr-bench --bin experiments --release -- e4      # a subset
//! cargo run -p ssr-bench --bin experiments --release -- --quick # small sweep
//! ```

use ssr_bench::experiments::{self, ExpResult, Profile};

fn print_result(r: &ExpResult) {
    println!("## {} — {}\n", r.id, r.title);
    print!("{}", r.table);
    for note in &r.notes {
        println!("\n> {note}");
    }
    println!(
        "\n**{}**\n",
        if r.pass {
            "PASS — all paper bounds hold"
        } else {
            "FAIL — a bound was violated"
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    let selected: Vec<ExpResult> = experiments::all(profile)
        .into_iter()
        .filter(|r| {
            wanted.is_empty()
                || r.id
                    .to_lowercase()
                    .split('+')
                    .any(|part| wanted.iter().any(|w| w == part))
        })
        .collect();

    let mut all_pass = true;
    for r in &selected {
        print_result(r);
        all_pass &= r.pass;
    }
    println!(
        "=== {} experiment group(s): {} ===",
        selected.len(),
        if all_pass { "ALL PASS" } else { "FAILURES PRESENT" }
    );
    if !all_pass {
        std::process::exit(1);
    }
}
