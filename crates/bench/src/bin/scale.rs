//! Large-scale convergence driver for the staged step pipeline: runs
//! the SDR composition to termination on rings and tori up to 10⁶
//! nodes at several intra-run thread counts, verifies byte-identity
//! across thread counts and convergence within the Cor. 5 bound, and
//! writes throughput results — including the per-phase wall-time
//! breakdown from the `ssr-obs` metrics snapshot — to
//! `BENCH_SCALE.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin scale --release                # full sweep
//! cargo run -p ssr-bench --bin scale --release -- --smoke     # CI smoke (10⁵ ring)
//! cargo run -p ssr-bench --bin scale --release -- --out PATH  # result path
//! cargo run -p ssr-bench --bin scale --release -- --progress  # live cell progress
//! cargo run -p ssr-bench --bin scale --release -- --metrics PATH # merged metrics JSON
//! cargo run -p ssr-bench --bin scale --release -- --trace DIR # per-cell JSONL traces
//! cargo run -p ssr-bench --bin scale --release -- --report DIR # self-contained HTML report
//! ```
//!
//! The workload is `Agreement ∘ SDR` from an adversarial
//! configuration under the synchronous daemon (maximal per-step
//! selections, so the apply/guard kernels see the largest possible
//! fan-out). For every `(topology, n)` cell the run is repeated at
//! each thread count and the final configuration and statistics must
//! match the sequential run exactly — the process exits nonzero on
//! any divergence or non-convergence.
//!
//! Each measured run carries a timed `PipelineMetrics` trace sink, so
//! `BENCH_SCALE.json` (schema `bench-scale-v2`) reports where the wall
//! time went per phase (`select`/`apply`/`guards` nanos) and how often
//! the parallel kernels engaged. `--trace DIR` is intended for
//! `--smoke`-sized runs — a full 10⁶-node sweep traces gigabytes.

use std::time::Instant;

use ssr_core::columns::ComposedColumns;
use ssr_core::toys::Agreement;
use ssr_core::Sdr;
use ssr_graph::{generators, Graph};
use ssr_obs::metrics::MetricsSet;
use ssr_obs::observers::{ConflictObserver, ConflictSummary};
use ssr_obs::pipeline::{CompositeSink, PipelineMetrics};
use ssr_obs::progress::{Progress, StderrProgress};
use ssr_obs::trace::JsonlSink;
use ssr_runtime::{Daemon, ScalarColumns, Simulator, StateColumns, StepOutcome};

/// One measured run.
struct RunResult {
    topology: &'static str,
    n: usize,
    threads: usize,
    steps: u64,
    moves: u64,
    rounds: u64,
    seconds: f64,
    converged: bool,
    conflict_classes_avg: f64,
    soa_heap_bytes: usize,
    /// Per-phase wall time of the measured run, from the pipeline's
    /// timed trace events.
    phase_select_nanos: u64,
    phase_apply_nanos: u64,
    phase_guards_nanos: u64,
    /// Steps on which the parallel apply/guards kernels engaged.
    apply_par_steps: u64,
    guards_par_steps: u64,
}

fn build(topology: &str, n: usize) -> Graph {
    match topology {
        "ring" => generators::ring(n),
        "torus" => {
            let side = ((n as f64).sqrt().round() as usize).max(3);
            generators::torus(side, side)
        }
        other => panic!("unknown topology {other:?}"),
    }
}

/// Runs the composition to termination (or the Cor. 5 step bound under
/// the synchronous daemon) and reports throughput plus diagnostics.
type SdrAgreementState = ssr_core::Composed<u32>;

fn histogram_sum(m: &MetricsSet, key: &str) -> u64 {
    m.histogram(key).map(|h| h.sum()).unwrap_or(0)
}

fn run_cell(
    g: &Graph,
    topology: &'static str,
    n: usize,
    threads: usize,
    trace_dir: Option<&str>,
) -> (
    RunResult,
    Vec<SdrAgreementState>,
    MetricsSet,
    ConflictSummary,
) {
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0x5CA1E);
    let mut sim = Simulator::new(g, algo, init, Daemon::Synchronous, 11);
    sim.set_intra_threads(threads);
    // Phase-timed metrics on the measured run; optionally a JSONL
    // event trace (timing stays out of the file so traces of the same
    // cell are byte-identical).
    let file = trace_dir.and_then(|dir| {
        JsonlSink::create(format!("{dir}/trace-{topology}-{n}-t{threads}.jsonl")).ok()
    });
    sim.set_trace_sink(Box::new(CompositeSink::new(
        Some(PipelineMetrics::new()),
        file,
    )));
    // Synchronous steps are rounds, so Cor. 5 bounds convergence.
    let cap = 3 * g.node_count() as u64 + 16;
    let started = Instant::now();
    let mut converged = false;
    for _ in 0..cap {
        if let StepOutcome::Terminal = sim.step() {
            converged = true;
            break;
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    let mut cell_metrics = MetricsSet::new();
    if let Some(mut sink) = sim.take_trace_sink() {
        sink.flush();
        if let Some(folded) = sink
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CompositeSink>())
            .and_then(CompositeSink::take_metrics)
        {
            cell_metrics = folded;
        }
    }
    // Conflict-partition diagnostic on a short replay: how many
    // greedy classes the per-step selections induce.
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0x5CA1E);
    let mut diag = Simulator::new(g, algo, init, Daemon::Synchronous, 11);
    diag.set_conflict_stats(true);
    let mut conflicts = ConflictObserver::new();
    diag.execution().cap(10).observe(&mut conflicts).run();
    let summary = conflicts.summary();
    conflicts.merge_into(&mut cell_metrics);
    // SoA snapshot: flat columns of the final configuration.
    let mut cols: ComposedColumns<ScalarColumns<u32>> = ComposedColumns::default();
    sim.snapshot_columns(&mut cols);
    assert_eq!(cols.len(), g.node_count());
    let result = RunResult {
        topology,
        n,
        threads,
        steps: sim.stats().steps,
        moves: sim.stats().moves,
        rounds: sim.stats().completed_rounds,
        seconds,
        converged,
        conflict_classes_avg: summary.mean_classes().unwrap_or(0.0),
        soa_heap_bytes: cols.heap_bytes(),
        phase_select_nanos: histogram_sum(&cell_metrics, "phase.select.nanos"),
        phase_apply_nanos: histogram_sum(&cell_metrics, "phase.apply.nanos"),
        phase_guards_nanos: histogram_sum(&cell_metrics, "phase.guards.nanos"),
        apply_par_steps: cell_metrics
            .counter_value("kernel.apply.par_steps")
            .unwrap_or(0),
        guards_par_steps: cell_metrics
            .counter_value("kernel.guards.par_steps")
            .unwrap_or(0),
    };
    // The full final configuration, compared exactly across thread
    // counts.
    let fingerprint = sim.states().to_vec();
    (result, fingerprint, cell_metrics, summary)
}

fn json_escape_free(r: &RunResult) -> String {
    format!(
        "{{\"topology\":\"{}\",\"n\":{},\"threads\":{},\"steps\":{},\"moves\":{},\
         \"rounds\":{},\"seconds\":{:.6},\"steps_per_sec\":{:.1},\
         \"moves_per_sec\":{:.1},\"converged\":{},\
         \"conflict_classes_avg\":{:.2},\"soa_heap_bytes\":{},\
         \"phase_nanos\":{{\"select\":{},\"apply\":{},\"guards\":{}}},\
         \"kernel_par_steps\":{{\"apply\":{},\"guards\":{}}}}}",
        r.topology,
        r.n,
        r.threads,
        r.steps,
        r.moves,
        r.rounds,
        r.seconds,
        r.steps as f64 / r.seconds.max(1e-9),
        r.moves as f64 / r.seconds.max(1e-9),
        r.converged,
        r.conflict_classes_avg,
        r.soa_heap_bytes,
        r.phase_select_nanos,
        r.phase_apply_nanos,
        r.phase_guards_nanos,
        r.apply_par_steps,
        r.guards_par_steps,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let want_progress = args.iter().any(|a| a == "--progress");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_SCALE.json".into());
    let metrics_out = flag_value("--metrics");
    let trace_dir = flag_value("--trace");
    let report_dir = flag_value("--report");
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create --trace directory");
    }

    let (cells, threads_axis): (Vec<(&str, usize)>, Vec<usize>) = if smoke {
        (vec![("ring", 100_000)], vec![1, 2])
    } else {
        (
            vec![
                ("ring", 1_000),
                ("ring", 10_000),
                ("ring", 100_000),
                ("ring", 1_000_000),
                ("torus", 1_000),
                ("torus", 10_000),
                ("torus", 100_000),
                ("torus", 1_000_000),
            ],
            vec![1, 2, 4, 8],
        )
    };

    let mut progress = want_progress.then(StderrProgress::new);
    if let Some(p) = progress.as_mut() {
        p.begin(cells.len() * threads_axis.len());
    }
    let mut merged = MetricsSet::new();
    let mut lines = Vec::new();
    let mut failures = 0usize;
    let mut item = 0usize;
    for &(topology, n) in &cells {
        let g = build(topology, n);
        let mut baseline: Option<Vec<SdrAgreementState>> = None;
        for &threads in &threads_axis {
            let label = format!("{topology}/n={n}/t={threads}");
            if let Some(p) = progress.as_mut() {
                p.item_started(0, item, &label);
            }
            let (r, fingerprint, cell_metrics, conflicts) =
                run_cell(&g, topology, n, threads, trace_dir.as_deref());
            println!(
                "{:>6} n={:<9} threads={} steps={:<8} {:>10.0} steps/s {:>10.0} moves/s converged={} classes≈{:.1} phase s/a/g = {:.2}/{:.2}/{:.2}s",
                topology,
                n,
                threads,
                r.steps,
                r.steps as f64 / r.seconds.max(1e-9),
                r.moves as f64 / r.seconds.max(1e-9),
                r.converged,
                r.conflict_classes_avg,
                r.phase_select_nanos as f64 / 1e9,
                r.phase_apply_nanos as f64 / 1e9,
                r.phase_guards_nanos as f64 / 1e9,
            );
            println!("         {conflicts}");
            let mut ok = true;
            if !r.converged {
                eprintln!("FAIL: {topology} n={n} threads={threads} did not converge");
                failures += 1;
                ok = false;
            }
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(base) => {
                    if *base != fingerprint {
                        eprintln!(
                            "FAIL: {topology} n={n} threads={threads} diverged from sequential"
                        );
                        failures += 1;
                        ok = false;
                    }
                }
            }
            merged.merge(&cell_metrics);
            lines.push(json_escape_free(&r));
            if let Some(p) = progress.as_mut() {
                p.item_done(item, &label, ok);
            }
            item += 1;
        }
    }
    if let Some(p) = progress.as_mut() {
        p.finish();
    }

    // Coloring stats of the conflict partitions, via the serde-free
    // summary pretty-printer (merged over all cells' diagnostics).
    let snapshot = merged.snapshot();
    if let Some(path) = &metrics_out {
        std::fs::write(path, format!("{}\n", snapshot.to_json())).expect("write --metrics file");
        eprint!("{}", snapshot.render_table());
        eprintln!("metrics written to {path}");
    }

    let doc = format!(
        "{{\n  \"schema\": \"bench-scale-v2\",\n  \"smoke\": {smoke},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        lines.join(",\n    ")
    );
    std::fs::write(&out, &doc).expect("write BENCH_SCALE.json");
    println!("wrote {out}");
    // --report DIR: drop the sweep (and the merged metrics) into the
    // report directory and render the self-contained HTML page over
    // everything in it — including any --trace files written beneath.
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).expect("create --report directory");
        let dir = std::path::Path::new(dir);
        std::fs::write(dir.join("BENCH_SCALE.json"), &doc).expect("write report scale copy");
        std::fs::write(
            dir.join("metrics.json"),
            format!("{}\n", snapshot.to_json()),
        )
        .expect("write report metrics copy");
        match ssr_report::load_dir(dir).map(|a| ssr_report::render(&a)) {
            Ok(html) => {
                std::fs::write(dir.join("report.html"), html).expect("write report.html");
                println!("wrote {}", dir.join("report.html").display());
            }
            Err(e) => {
                eprintln!("error: cannot render report: {e}");
                std::process::exit(2);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
