//! Large-scale convergence driver for the staged step pipeline: runs
//! the SDR composition to termination on rings and tori up to 10⁶
//! nodes at several intra-run thread counts, verifies byte-identity
//! across thread counts and convergence within the Cor. 5 bound, and
//! writes throughput results to `BENCH_SCALE.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin scale --release                # full sweep
//! cargo run -p ssr-bench --bin scale --release -- --smoke     # CI smoke (10⁵ ring)
//! cargo run -p ssr-bench --bin scale --release -- --out PATH  # result path
//! ```
//!
//! The workload is `Agreement ∘ SDR` from an adversarial
//! configuration under the synchronous daemon (maximal per-step
//! selections, so the apply/guard kernels see the largest possible
//! fan-out). For every `(topology, n)` cell the run is repeated at
//! each thread count and the final configuration and statistics must
//! match the sequential run exactly — the process exits nonzero on
//! any divergence or non-convergence.

use std::time::Instant;

use ssr_core::columns::ComposedColumns;
use ssr_core::toys::Agreement;
use ssr_core::Sdr;
use ssr_graph::{generators, Graph};
use ssr_runtime::{Daemon, ScalarColumns, Simulator, StateColumns, StepOutcome};

/// One measured run.
struct RunResult {
    topology: &'static str,
    n: usize,
    threads: usize,
    steps: u64,
    moves: u64,
    rounds: u64,
    seconds: f64,
    converged: bool,
    conflict_classes_avg: f64,
    soa_heap_bytes: usize,
}

fn build(topology: &str, n: usize) -> Graph {
    match topology {
        "ring" => generators::ring(n),
        "torus" => {
            let side = ((n as f64).sqrt().round() as usize).max(3);
            generators::torus(side, side)
        }
        other => panic!("unknown topology {other:?}"),
    }
}

/// Runs the composition to termination (or the Cor. 5 step bound under
/// the synchronous daemon) and reports throughput plus diagnostics.
type SdrAgreementState = ssr_core::Composed<u32>;

fn run_cell(
    g: &Graph,
    topology: &'static str,
    n: usize,
    threads: usize,
) -> (RunResult, Vec<SdrAgreementState>) {
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0x5CA1E);
    let mut sim = Simulator::new(g, algo, init, Daemon::Synchronous, 11);
    sim.set_intra_threads(threads);
    // Synchronous steps are rounds, so Cor. 5 bounds convergence.
    let cap = 3 * g.node_count() as u64 + 16;
    let started = Instant::now();
    let mut converged = false;
    for _ in 0..cap {
        if let StepOutcome::Terminal = sim.step() {
            converged = true;
            break;
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    // Conflict-partition diagnostic on a short replay: how many
    // greedy classes the per-step selections induce.
    let algo = Sdr::new(Agreement::new(8));
    let init = algo.arbitrary_config(g, 0x5CA1E);
    let mut diag = Simulator::new(g, algo, init, Daemon::Synchronous, 11);
    diag.set_conflict_stats(true);
    let mut classes = Vec::new();
    for _ in 0..10 {
        if let StepOutcome::Terminal = diag.step() {
            break;
        }
        if let Some(c) = diag.last_conflict_classes() {
            classes.push(u64::from(c));
        }
    }
    let conflict_classes_avg = if classes.is_empty() {
        0.0
    } else {
        classes.iter().sum::<u64>() as f64 / classes.len() as f64
    };
    // SoA snapshot: flat columns of the final configuration.
    let mut cols: ComposedColumns<ScalarColumns<u32>> = ComposedColumns::default();
    sim.snapshot_columns(&mut cols);
    assert_eq!(cols.len(), g.node_count());
    let result = RunResult {
        topology,
        n,
        threads,
        steps: sim.stats().steps,
        moves: sim.stats().moves,
        rounds: sim.stats().completed_rounds,
        seconds,
        converged,
        conflict_classes_avg,
        soa_heap_bytes: cols.heap_bytes(),
    };
    // The full final configuration, compared exactly across thread
    // counts.
    let fingerprint = sim.states().to_vec();
    (result, fingerprint)
}

fn json_escape_free(r: &RunResult) -> String {
    format!(
        "{{\"topology\":\"{}\",\"n\":{},\"threads\":{},\"steps\":{},\"moves\":{},\
         \"rounds\":{},\"seconds\":{:.6},\"steps_per_sec\":{:.1},\
         \"moves_per_sec\":{:.1},\"converged\":{},\
         \"conflict_classes_avg\":{:.2},\"soa_heap_bytes\":{}}}",
        r.topology,
        r.n,
        r.threads,
        r.steps,
        r.moves,
        r.rounds,
        r.seconds,
        r.steps as f64 / r.seconds.max(1e-9),
        r.moves as f64 / r.seconds.max(1e-9),
        r.converged,
        r.conflict_classes_avg,
        r.soa_heap_bytes,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_SCALE.json".into());

    let (cells, threads_axis): (Vec<(&str, usize)>, Vec<usize>) = if smoke {
        (vec![("ring", 100_000)], vec![1, 2])
    } else {
        (
            vec![
                ("ring", 1_000),
                ("ring", 10_000),
                ("ring", 100_000),
                ("ring", 1_000_000),
                ("torus", 1_000),
                ("torus", 10_000),
                ("torus", 100_000),
                ("torus", 1_000_000),
            ],
            vec![1, 2, 4, 8],
        )
    };

    let mut lines = Vec::new();
    let mut failures = 0usize;
    for &(topology, n) in &cells {
        let g = build(topology, n);
        let mut baseline: Option<Vec<SdrAgreementState>> = None;
        for &threads in &threads_axis {
            let (r, fingerprint) = run_cell(&g, topology, n, threads);
            println!(
                "{:>6} n={:<9} threads={} steps={:<8} {:>10.0} steps/s {:>10.0} moves/s converged={} classes≈{:.1}",
                topology,
                n,
                threads,
                r.steps,
                r.steps as f64 / r.seconds.max(1e-9),
                r.moves as f64 / r.seconds.max(1e-9),
                r.converged,
                r.conflict_classes_avg,
            );
            if !r.converged {
                eprintln!("FAIL: {topology} n={n} threads={threads} did not converge");
                failures += 1;
            }
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(base) => {
                    if *base != fingerprint {
                        eprintln!(
                            "FAIL: {topology} n={n} threads={threads} diverged from sequential"
                        );
                        failures += 1;
                    }
                }
            }
            lines.push(json_escape_free(&r));
        }
    }

    let doc = format!(
        "{{\n  \"schema\": \"bench-scale-v1\",\n  \"smoke\": {smoke},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        lines.join(",\n    ")
    );
    std::fs::write(&out, &doc).expect("write BENCH_SCALE.json");
    println!("wrote {out}");
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
