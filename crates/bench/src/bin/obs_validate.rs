//! Validates observability artifacts against their schemas. Used by
//! CI after running an instrumented experiment.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin obs_validate -- PATH [PATH...]
//! cargo run -p ssr-bench --bin obs_validate -- --kind metrics PATH [PATH...]
//! cargo run -p ssr-bench --bin obs_validate -- --kind history PATH [PATH...]
//! cargo run -p ssr-bench --bin obs_validate -- --kind checkpoint PATH [PATH...]
//! ```
//!
//! `--kind` selects the schema (default `trace`):
//!
//! - `trace` — `.jsonl` event traces (`DESIGN.md` §10): every line a
//!   known event carrying its required keys
//! - `metrics` — `.json` snapshots with schema `ssr-metrics-v1`
//! - `history` — `.jsonl` perf-history stores with schema
//!   `ssr-history/v1` per line (`DESIGN.md` §12)
//! - `checkpoint` — `.jsonl` resumable-sweep journals with schema
//!   `ssr-checkpoint/v1` (`DESIGN.md` §13): header line plus one
//!   fingerprinted record per line, strictly (a torn tail fails here
//!   even though resume tolerates it)
//!
//! Each `PATH` is a file of the kind's extension or a directory,
//! walked recursively. Exits nonzero on the first schema violation, on
//! an empty file, or when no matching file is found at all (a
//! directory with zero artifacts usually means the instrumented run
//! silently wrote nothing — that should fail CI, not pass it).

use std::path::{Path, PathBuf};

use ssr_obs::trace::validate_jsonl_line;
use ssr_report::history::validate_history_line;
use ssr_report::reader::parse_metrics_json;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Trace,
    Metrics,
    History,
    Checkpoint,
}

impl Kind {
    fn extension(self) -> &'static str {
        match self {
            Kind::Trace | Kind::History | Kind::Checkpoint => "jsonl",
            Kind::Metrics => "json",
        }
    }

    fn noun(self) -> &'static str {
        match self {
            Kind::Trace => "trace",
            Kind::Metrics => "metrics",
            Kind::History => "history",
            Kind::Checkpoint => "checkpoint",
        }
    }
}

fn collect(path: &Path, ext: &str, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect(&entry, ext, out)?;
        }
    } else if path.extension().is_some_and(|e| e == ext) {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// Validates one file; returns the unit count (lines, or metrics).
fn validate_file(kind: Kind, path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let count = match kind {
        Kind::Trace | Kind::History => {
            let per_line: fn(&str) -> Result<(), String> = match kind {
                Kind::Trace => validate_jsonl_line,
                _ => validate_history_line,
            };
            let mut lines = 0usize;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                per_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
                lines += 1;
            }
            lines
        }
        Kind::Metrics => parse_metrics_json(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .metrics
            .len(),
        Kind::Checkpoint => ssr_campaign::checkpoint::validate(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?,
    };
    if count == 0 {
        return Err(format!("{}: empty {} file", path.display(), kind.noun()));
    }
    Ok(count)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = Kind::Trace;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => {
                kind = match it.next().map(String::as_str) {
                    Some("trace") => Kind::Trace,
                    Some("metrics") => Kind::Metrics,
                    Some("history") => Kind::History,
                    Some("checkpoint") => Kind::Checkpoint,
                    other => {
                        eprintln!(
                            "error: --kind needs trace|metrics|history|checkpoint, got {other:?}"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: obs_validate [--kind trace|metrics|history|checkpoint] PATH [PATH...]\n\
                     (each PATH a file of the kind's extension or a directory)"
                );
                std::process::exit(2);
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unrecognized flag {flag:?} (known: --kind)");
                std::process::exit(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: obs_validate [--kind trace|metrics|history|checkpoint] PATH [PATH...]");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    for arg in &paths {
        let path = Path::new(arg);
        if !path.exists() {
            eprintln!("error: {arg}: no such file or directory");
            std::process::exit(2);
        }
        if let Err(e) = collect(path, kind.extension(), &mut files) {
            eprintln!("error: {arg}: {e}");
            std::process::exit(2);
        }
    }
    if files.is_empty() {
        eprintln!(
            "error: no .{} {} files under {}",
            kind.extension(),
            kind.noun(),
            paths.join(", ")
        );
        std::process::exit(1);
    }
    let mut total = 0usize;
    for file in &files {
        match validate_file(kind, file) {
            Ok(count) => total += count,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "obs_validate: {} {} unit(s) across {} file(s) conform to the schema",
        total,
        kind.noun(),
        files.len()
    );
}
