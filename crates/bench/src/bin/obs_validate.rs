//! Validates JSONL trace files against the `ssr-obs` event schema
//! (`DESIGN.md` §10): every line must be a known event carrying its
//! required keys. Used by CI after running an instrumented experiment.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin obs_validate -- PATH [PATH...]
//! ```
//!
//! Each `PATH` is a `.jsonl` trace file or a directory, walked
//! recursively for `.jsonl` files. Exits nonzero on the first schema
//! violation, on an empty file, or when no trace file is found at all
//! (a directory with zero traces usually means the instrumented run
//! silently wrote nothing — that should fail CI, not pass it).

use std::path::{Path, PathBuf};

use ssr_obs::trace::validate_jsonl_line;

fn collect(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "jsonl") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn validate_file(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        validate_jsonl_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{}: empty trace file", path.display()));
    }
    Ok(lines)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: obs_validate PATH [PATH...]   (each PATH a .jsonl file or directory)");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    for arg in &args {
        let path = Path::new(arg);
        if !path.exists() {
            eprintln!("error: {arg}: no such file or directory");
            std::process::exit(2);
        }
        if let Err(e) = collect(path, &mut files) {
            eprintln!("error: {arg}: {e}");
            std::process::exit(2);
        }
    }
    if files.is_empty() {
        eprintln!("error: no .jsonl trace files under {}", args.join(", "));
        std::process::exit(1);
    }
    let mut total = 0usize;
    for file in &files {
        match validate_file(file) {
            Ok(lines) => total += lines,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "obs_validate: {} event(s) across {} trace file(s) conform to the schema",
        total,
        files.len()
    );
}
