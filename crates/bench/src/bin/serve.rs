//! The campaign-service CLI: binds `ssr-serve`'s HTTP server and runs
//! until a `POST /shutdown` finishes draining.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ssr-bench --bin serve --release                        # 127.0.0.1:7878
//! cargo run -p ssr-bench --bin serve --release -- --addr 127.0.0.1:0 # ephemeral port
//! cargo run -p ssr-bench --bin serve --release -- --threads 8        # engine workers
//! cargo run -p ssr-bench --bin serve --release -- --checkpoint J.jsonl # resumable store
//! cargo run -p ssr-bench --bin serve --release -- --port-file P      # write bound port
//! ```
//!
//! `--checkpoint PATH` replays the `ssr-checkpoint/v1` journal at
//! `PATH` into the content-addressed cache on boot and appends every
//! fresh record, so a killed server resumes where it left off.
//! `--port-file PATH` writes the bound port number (a bare integer) to
//! `PATH` once the listener exists — how CI scripts using `--addr
//! 127.0.0.1:0` discover the port. The HTTP surface is documented in
//! `DESIGN.md` §13.

use ssr_serve::{Server, ServerConfig};

struct Cli {
    config: ServerConfig,
    port_file: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        config: ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            checkpoint: None,
        },
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cli.config.addr = it.next().ok_or("--addr needs host:port")?,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cli.config.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| format!("invalid --threads value {v:?}"))?;
            }
            "--checkpoint" => {
                cli.config.checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?.into());
            }
            "--port-file" => cli.port_file = Some(it.next().ok_or("--port-file needs a path")?),
            flag => {
                return Err(format!(
                    "unrecognized argument {flag:?} (known: --addr HOST:PORT --threads N \
                     --checkpoint PATH --port-file PATH)"
                ));
            }
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(cli.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    if server.replayed() > 0 {
        eprintln!("checkpoint: replayed {} entries", server.replayed());
    }
    if let Some(path) = &cli.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("listening on {addr}");
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!("drained; bye");
}
