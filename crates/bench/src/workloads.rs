//! Workload generators shared by the experiments and benches.

use ssr_graph::{generators, Graph};
use ssr_runtime::Daemon;

// The adversarial init workloads migrated to the campaign layer (the
// tears back its `InitPlan::Tear`, the broadcast chain seeds the
// explorer's init sets); re-exported here for the benches.
pub use ssr_campaign::workloads::{sdr_broadcast_chain, unison_tear, unison_tear_plain};

/// Topology families swept by the experiments (label, builder).
pub fn topology_suite(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let mut out = vec![
        ("ring", generators::ring(n.max(3))),
        ("path", generators::path(n)),
        ("star", generators::star(n.max(2))),
        ("rand-tree", generators::random_tree(n, seed)),
        ("rand-sparse", generators::random_connected(n, n / 2, seed)),
    ];
    let side = ((n as f64).sqrt().round() as usize).max(2);
    out.push(("grid", generators::grid(side, side)));
    out
}

/// The daemon strategies exercised by the sweeps.
pub fn daemon_suite() -> Vec<Daemon> {
    vec![
        Daemon::Synchronous,
        Daemon::Central,
        Daemon::RandomSubset { p: 0.5 },
        Daemon::PreferHighRules,
        Daemon::LexMin,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{toys::Agreement, Sdr, Status};
    use ssr_runtime::Simulator;

    #[test]
    fn suite_labels_unique() {
        let suite = topology_suite(12, 1);
        let mut labels: Vec<_> = suite.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), suite.len());
    }

    #[test]
    fn tear_has_discontinuity() {
        let g = generators::path(8);
        let states = unison_tear(&g, 9, 4);
        // Left half is a unit gradient; the middle edge jumps by 4.
        assert_eq!(states[3].inner, 3);
        assert_eq!(states[4].inner, 8);
        let plain = unison_tear_plain(&g, 9, 4);
        assert_eq!(plain[4], 8);
    }

    #[test]
    fn daemon_suite_includes_adversaries() {
        assert!(daemon_suite().len() >= 5);
    }

    #[test]
    fn broadcast_chain_is_valid_and_recovers_in_bound() {
        let n = 14usize;
        let g = generators::path(n);
        let sdr = Sdr::new(Agreement::new(3));
        let init = sdr_broadcast_chain(&sdr, &g);
        assert_eq!(init[0].sdr.status, Status::RB);
        assert_eq!(init[n - 1].sdr.status, Status::RF);
        assert_eq!(init[n - 1].sdr.dist, (n - 1) as u32);
        let check = Sdr::new(Agreement::new(3));
        // The chain forces a full feedback climb + completion descent —
        // close to the 3n worst case, but never beyond it, under the
        // slowest (central) schedule.
        let mut sim = Simulator::new(&g, sdr, init, Daemon::Central, 7);
        let out = sim
            .execution()
            .cap(1_000_000)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        assert!(out.reached);
        assert!(out.rounds_at_hit <= 3 * n as u64, "Corollary 5 violated");
        assert!(
            out.rounds_at_hit >= n as u64,
            "the chain should cost at least one full traversal ({} rounds)",
            out.rounds_at_hit
        );
    }
}
