//! Canonical state encoding: the bridge between the runtime's
//! `Algorithm::State` bound (`Clone + PartialEq` — deliberately *not*
//! `Hash`) and the explorer's need to deduplicate configurations.
//!
//! [`ExploreState`] turns one per-process state into a canonical
//! sequence of `u64` words; a configuration's key is the concatenation
//! of its nodes' words (node order is the canonical order). Two states
//! must encode identically **iff they are behaviorally equivalent**:
//! the encoding is allowed to *quotient away* dead variables, and does
//! so for SDR's distance — `d_u` is meaningless while `st_u = C`
//! (§3.2: no predicate ever reads it in that case, and every rule that
//! leaves `C` overwrites it), so `(C, 7)` and `(C, 0)` are the same
//! canonical state. This quotient shrinks the reachable space
//! considerably: after `rule_C` a process parks at `(C, d)` with
//! whatever distance the reset wave left behind, and without the
//! canonicalization every historical `d` value would split the state.
//!
//! Implementations exist for every state type the workspace runs:
//! primitives (clocks, counters, toy inputs), [`SdrState`], the
//! product [`Composed<S>`] (covering SDR over any encoded input:
//! `U ∘ SDR`, `FGA ∘ SDR`, the toys), [`FgaState`], and the baselines'
//! [`MonoState<S>`] / bare clocks.

use ssr_baselines::{MonoState, Phase};
use ssr_core::{Composed, SdrState, Status};

/// A per-process state with a canonical `u64`-word encoding.
///
/// Contract: for states `a`, `b` of the same type, the encodings are
/// equal **iff** `a` and `b` are behaviorally equivalent — same
/// enabled rules and same successors (after canonicalization) in every
/// context. Plain `PartialEq` equality must imply encoding equality;
/// the converse may be relaxed only by quotienting provably dead
/// variables (see the module docs for SDR's distance).
///
/// # Examples
///
/// ```
/// use ssr_core::{SdrState, Status};
/// use ssr_explore::ExploreState;
///
/// let mut a = Vec::new();
/// SdrState::new(Status::C, 7).encode(&mut a);
/// let mut b = Vec::new();
/// SdrState::new(Status::C, 0).encode(&mut b);
/// assert_eq!(a, b, "distance is dead while the status is C");
///
/// let mut c = Vec::new();
/// SdrState::new(Status::RB, 7).encode(&mut c);
/// assert_ne!(a, c);
/// ```
pub trait ExploreState {
    /// Appends this state's canonical words to `out`.
    ///
    /// Every state of a given type must append the **same number** of
    /// words, so configuration keys stay aligned.
    fn encode(&self, out: &mut Vec<u64>);
}

macro_rules! impl_explore_state_prim {
    ($($t:ty),+) => {
        $(impl ExploreState for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u64>) {
                out.push(*self as u64);
            }
        })+
    };
}

impl_explore_state_prim!(u8, u16, u32, u64, bool);

impl ExploreState for Status {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            Status::C => 0,
            Status::RB => 1,
            Status::RF => 2,
        });
    }
}

impl ExploreState for SdrState {
    /// One word: `status | dist << 2`, with `dist` canonicalized to 0
    /// while the status is `C` (the distance is dead there — see the
    /// module docs for why this quotient is sound).
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        let word = match self.status {
            Status::C => 0,
            Status::RB => 1 | (self.dist as u64) << 2,
            Status::RF => 2 | (self.dist as u64) << 2,
        };
        out.push(word);
    }
}

impl<S: ExploreState> ExploreState for Composed<S> {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        self.sdr.encode(out);
        self.inner.encode(out);
    }
}

impl ExploreState for ssr_alliance::FgaState {
    /// One word packing `col`, `scr + 1` (2 bits), `can_q`, and the
    /// pointer (`⊥` ↦ `u32::MAX`).
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        let ptr = self.ptr.map_or(u32::MAX, |v| v.0);
        out.push(
            (self.col as u64)
                | (((self.scr + 1) as u64) << 1)
                | ((self.can_q as u64) << 3)
                | ((ptr as u64) << 4),
        );
    }
}

impl ExploreState for Phase {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            Phase::Idle => 0,
            Phase::Req => 1,
            Phase::RB => 2,
            Phase::RF => 3,
        });
    }
}

impl<S: ExploreState> ExploreState for MonoState<S> {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        self.phase.encode(out);
        self.inner.encode(out);
    }
}

/// Encodes a whole configuration (one state per node, in node order)
/// into a boxed key, reusing `scratch` for the intermediate buffer.
pub(crate) fn encode_config<S: ExploreState>(config: &[S], scratch: &mut Vec<u64>) -> Box<[u64]> {
    scratch.clear();
    for s in config {
        s.encode(scratch);
    }
    scratch.as_slice().into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_alliance::FgaState;
    use ssr_graph::NodeId;

    fn words<S: ExploreState>(s: &S) -> Vec<u64> {
        let mut out = Vec::new();
        s.encode(&mut out);
        out
    }

    #[test]
    fn sdr_state_quotients_dead_distance() {
        assert_eq!(
            words(&SdrState::new(Status::C, 9)),
            words(&SdrState::new(Status::C, 0))
        );
        assert_ne!(
            words(&SdrState::new(Status::RB, 9)),
            words(&SdrState::new(Status::RB, 0))
        );
        assert_ne!(
            words(&SdrState::new(Status::RB, 1)),
            words(&SdrState::new(Status::RF, 1))
        );
    }

    #[test]
    fn composed_concatenates_components() {
        let a = Composed::new(SdrState::root(), 3u64);
        let b = Composed::new(SdrState::root(), 4u64);
        assert_eq!(words(&a).len(), 2);
        assert_ne!(words(&a), words(&b));
    }

    #[test]
    fn fga_state_fields_are_distinguished() {
        let base = FgaState::reset();
        let mut seen = vec![words(&base)];
        for s in [
            FgaState { col: false, ..base },
            FgaState { scr: -1, ..base },
            FgaState {
                can_q: false,
                ..base
            },
            FgaState {
                ptr: Some(NodeId(0)),
                ..base
            },
            FgaState {
                ptr: Some(NodeId(1)),
                ..base
            },
        ] {
            let w = words(&s);
            assert!(!seen.contains(&w), "{s:?} collides");
            seen.push(w);
        }
    }

    #[test]
    fn mono_state_encodes_phase_and_inner() {
        let a = MonoState {
            phase: Phase::Idle,
            inner: 2u64,
        };
        let b = MonoState {
            phase: Phase::RB,
            inner: 2u64,
        };
        assert_ne!(words(&a), words(&b));
    }

    #[test]
    fn encode_config_is_order_sensitive() {
        let mut scratch = Vec::new();
        let k1 = encode_config(&[1u64, 2], &mut scratch);
        let k2 = encode_config(&[2u64, 1], &mut scratch);
        assert_ne!(k1, k2);
        assert_eq!(k1.len(), 2);
    }
}
