//! Bounded exhaustive schedule-space exploration for the SDR stack:
//! exact worst-case bounds, mechanical closure/convergence
//! verification, and replayable counterexample traces.
//!
//! Every claim of the paper is a worst-case statement over *all*
//! unfair-daemon schedules, but a stochastic simulator only ever
//! observes one schedule per seed. For small graphs (n ≲ 8–10) this
//! crate walks the **full configuration graph** instead — every
//! non-empty subset of enabled processes at every step for the
//! distributed daemon ([`DaemonClass`]) — and turns the paper's
//! universally-quantified claims into checkable facts:
//!
//! * **convergence**: every reachable configuration stabilizes (no
//!   illegitimate deadlock, no illegitimate cycle);
//! * **closure**: legitimate configurations only step to legitimate
//!   configurations;
//! * **exact worst cases**: the precise maxima of moves, steps, and
//!   §2.4 rounds until legitimacy, as longest paths over the explored
//!   graph — gospel the stochastic campaign layer can be validated
//!   against (its observed maxima can never exceed them);
//! * **witnesses**: a schedule achieving each worst case, extracted as
//!   a [`Witness`] and replayable step-for-step through the ordinary
//!   [`Execution`](ssr_runtime::Execution) engine (and therefore
//!   through any [`Observer`](ssr_runtime::Observer)) via
//!   [`Daemon::Script`](ssr_runtime::Daemon).
//!
//! The generic engine lives in [`ssr_runtime::exhaustive`] (so that
//! algorithm *families* can expose exploration behind the object-safe
//! [`ExploreFamily`](ssr_runtime::family::ExploreFamily) hook without
//! depending on this crate); everything there is re-exported here
//! under the historical paths. States are deduplicated through the
//! [`ExploreState`] canonical encoding (the `Algorithm::State` bound
//! is deliberately not `Hash`), which also quotients away provably
//! dead variables such as SDR's distance under status `C`. The
//! frontier expands in parallel ([`ExploreOptions::threads`]) with a
//! deterministic sequential merge, so results are **byte-identical
//! for any thread count** — the same contract as the `ssr-campaign`
//! engine.
//!
//! [`campaign::explore_scenario`] surfaces all of this through
//! declarative `ssr-campaign` scenarios, selecting families through
//! the same string-addressable registry as the stochastic runner
//! (that is how experiment E13 compares exact worst cases against the
//! closed-form §5/§6 bounds and against stochastic campaign maxima —
//! for the built-in families *and* any family you register yourself).
//!
//! # Examples
//!
//! Exhaustively verify SDR over the agreement toy on a tiny star, and
//! replay the worst-case schedule:
//!
//! ```
//! use ssr_core::{toys::Agreement, Sdr};
//! use ssr_explore::{explore, ExploreOptions};
//! use ssr_graph::generators;
//!
//! let g = generators::star(4);
//! let sdr = Sdr::new(Agreement::new(2));
//! let check = Sdr::new(Agreement::new(2));
//! let inits: Vec<_> = (0..4).map(|s| sdr.arbitrary_config(&g, s)).collect();
//! let ex = explore(
//!     &g,
//!     &sdr,
//!     &inits,
//!     |gr, st| check.is_normal_config(gr, st),
//!     &ExploreOptions::default(),
//! )
//! .unwrap();
//! assert!(ex.verified(), "closure + convergence, exhaustively");
//! let worst = ex.worst.unwrap();
//! assert!(worst.rounds <= 3 * 4, "Corollary 5, exactly");
//!
//! // The worst case is not an estimate: a schedule achieving it
//! // replays through the ordinary execution engine.
//! if let Some(w) = ex.witness_moves {
//!     let verify = Sdr::new(Agreement::new(2));
//!     let out = w.replay(&g, sdr, inits[w.init].clone(), move |gr, st| {
//!         verify.is_normal_config(gr, st)
//!     });
//!     assert!(w.matches(&out));
//!     assert_eq!(out.moves_at_hit, worst.moves);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod campaign;

pub use ssr_runtime::exhaustive::{
    explore, ClosureViolation, DaemonClass, Exploration, ExploreError, ExploreOptions,
    ExploreState, Witness, WorstCase, MAX_ENABLED, MAX_NODES,
};

use ssr_campaign::TopologySpec;
use ssr_graph::Graph;

/// The explorer's tiny-graph suite: the topology families small enough
/// to exhaust, sized around `n` nodes (`(label, graph)` pairs).
///
/// Includes the caterpillar and wheel families — structured worst-case
/// shapes (path-like diameter with per-node contention; hub contention
/// with rim wave-chasing) that stay tiny. Graphs are built through the
/// campaign's [`TopologySpec`] axis (one sizing convention), so this
/// suite is exactly what E13's grid explores.
pub fn tiny_suite(n: usize) -> Vec<(&'static str, Graph)> {
    let n = n.max(3);
    let mut out = vec![
        ("path", TopologySpec::Path.build(n, 0)),
        ("ring", TopologySpec::Ring.build(n, 0)),
        ("star", TopologySpec::Star.build(n, 0)),
        ("caterpillar", TopologySpec::Caterpillar.build(n, 0)),
    ];
    if n >= 4 {
        out.push(("wheel", TopologySpec::Wheel.build(n, 0)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_has_the_new_families() {
        let suite = tiny_suite(5);
        let labels: Vec<_> = suite.iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"caterpillar"));
        assert!(labels.contains(&"wheel"));
        for (label, g) in &suite {
            assert!(
                g.node_count() <= MAX_NODES,
                "{label} too large for the explorer"
            );
        }
    }
}
