//! Exhaustive mode for `ssr-campaign` scenarios: expand a declarative
//! [`Scenario`] into an exhaustive exploration instead of one
//! stochastic run.
//!
//! [`explore_scenario`] is a drop-in runner for
//! `ssr_campaign::engine::run_with`, mirroring how the stochastic
//! experiments drive the engine — the same topology/size/algorithm
//! axes, the same index-derived seeds, hence the same determinism
//! contract. Scenarios select their family through the **same
//! registry** as the stochastic runner; a family opts into exhaustive
//! sweeps by returning its
//! [`ExploreFamily`](ssr_runtime::family::ExploreFamily) hook from
//! [`Family::explore`](ssr_runtime::family::Family::explore), which
//! owns the fixed *seed set* of initial configurations (the designated
//! `γ_init`, adversarial samples, and the structured worst-case
//! workloads), exhausts every daemon choice from all of them, and
//! reports the exact worst case next to the paper's closed-form bound.
//!
//! [`stochastic_max`] runs the ordinary stochastic simulator over the
//! *same* initial configurations (all daemon strategies × trials) —
//! the observable maxima it returns are guaranteed to be dominated by
//! the exact worst case, which is exactly the cross-validation E13 and
//! the property tests assert.
//!
//! Families without the hook (`cfg-unison`, `mono-reset`, `fga:<…>`,
//! unregistered labels) return `None`, mirroring the `Verdict::Skip`
//! convention of the stochastic runner — and a family registered from
//! *outside* the workspace explores through the identical path (see
//! `examples/custom_family.rs`).

use ssr_campaign::{families, Scenario};
use ssr_graph::Graph;
use ssr_runtime::family::{ExploreReport, FamilyRegistry};

pub use ssr_runtime::family::StochasticMax;

use crate::ExploreOptions;

/// Options for scenario-level exhaustive runs.
#[derive(Clone, Debug)]
pub struct ScenarioExploreOptions {
    /// The underlying explorer configuration.
    pub explore: ExploreOptions,
    /// Number of adversarial (`arbitrary_config`) samples in the
    /// initial seed set, on top of `γ_init` and the structured
    /// worst-case workloads.
    pub init_samples: usize,
    /// Trials per daemon strategy for [`stochastic_max`].
    pub stochastic_trials: u64,
}

impl Default for ScenarioExploreOptions {
    fn default() -> Self {
        ScenarioExploreOptions {
            explore: ExploreOptions::default(),
            init_samples: 4,
            stochastic_trials: 2,
        }
    }
}

/// Flat result of one exhaustive scenario (the explorer's analogue of
/// `ScenarioRecord`).
#[derive(Clone, Debug, PartialEq)]
pub struct ExhaustiveRecord {
    /// Grid index of the scenario.
    pub index: usize,
    /// Topology label.
    pub topology: String,
    /// Nominal size.
    pub n: usize,
    /// Actual node count.
    pub nodes: u64,
    /// Algorithm label.
    pub algorithm: String,
    /// Daemon class explored.
    pub daemon_class: &'static str,
    /// Size of the initial seed set.
    pub init_count: usize,
    /// Distinct configurations reached.
    pub states: u64,
    /// Transitions enumerated.
    pub transitions: u64,
    /// Exact worst-case moves to legitimacy over every schedule.
    pub exact_moves: u64,
    /// Exact worst-case steps.
    pub exact_steps: u64,
    /// Exact worst-case rounds.
    pub exact_rounds: u64,
    /// The paper's closed-form move bound, where one exists.
    pub bound_moves: Option<u64>,
    /// The paper's closed-form round bound.
    pub bound_rounds: Option<u64>,
    /// Convergence + closure exhaustively verified.
    pub verified: bool,
    /// Exact worst cases within every applicable closed-form bound.
    pub within_bounds: bool,
    /// Both witness schedules replayed through `Execution`
    /// byte-identically (moves, steps, rounds, predicate hit).
    pub replay_ok: bool,
    /// The exploration failed (limits); the other fields are zeroed.
    pub error: Option<String>,
}

impl ExhaustiveRecord {
    /// Overall verdict of the row.
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.verified && self.within_bounds && self.replay_ok
    }
}

/// Exhaustively explores a scenario's family through the standard
/// registry; `None` for families without an explore hook (mirroring
/// the `Verdict::Skip` convention of the stochastic runner) or not
/// instantiable on the scenario's graph. The seed-set construction is
/// owned by the family and shared with [`stochastic_max`] — both
/// always operate on identical initial configurations.
pub fn explore_scenario(sc: &Scenario, opts: &ScenarioExploreOptions) -> Option<ExhaustiveRecord> {
    explore_scenario_in(families::default_registry(), sc, opts)
}

/// [`explore_scenario`] against a caller-supplied registry — how
/// user-registered families run exhaustive sweeps without touching
/// any workspace crate.
pub fn explore_scenario_in(
    registry: &FamilyRegistry,
    sc: &Scenario,
    opts: &ScenarioExploreOptions,
) -> Option<ExhaustiveRecord> {
    let [graph_seed, _, _, _] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    let family = registry.resolve(&sc.algorithm)?;
    if !family.instantiable(&g) {
        return None;
    }
    let explorer = family.explore()?;
    let report = explorer.explore(&g, sc.seed, opts.init_samples, &opts.explore);
    let bounds = explorer.bounds(&g);
    Some(finish_record(sc, &g, report, bounds))
}

/// Runs the stochastic simulator over the scenario family's exhaustive
/// seed set: every `Daemon::all_strategies` entry ×
/// [`ScenarioExploreOptions::stochastic_trials`] trials per initial
/// configuration, reporting the observed maxima.
pub fn stochastic_max(sc: &Scenario, opts: &ScenarioExploreOptions) -> Option<StochasticMax> {
    stochastic_max_in(families::default_registry(), sc, opts)
}

/// [`stochastic_max`] against a caller-supplied registry.
pub fn stochastic_max_in(
    registry: &FamilyRegistry,
    sc: &Scenario,
    opts: &ScenarioExploreOptions,
) -> Option<StochasticMax> {
    let [graph_seed, _, _, _] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    let family = registry.resolve(&sc.algorithm)?;
    if !family.instantiable(&g) {
        return None;
    }
    let explorer = family.explore()?;
    Some(explorer.stochastic_max(
        &g,
        sc.seed,
        opts.init_samples,
        opts.stochastic_trials,
        sc.step_cap,
    ))
}

fn finish_record(
    sc: &Scenario,
    g: &Graph,
    report: ExploreReport,
    bounds: ssr_runtime::family::Bounds,
) -> ExhaustiveRecord {
    let (bound_moves, bound_rounds) = (bounds.moves, bounds.rounds);
    let mut rec = ExhaustiveRecord {
        index: sc.index,
        topology: sc.topology.label(),
        n: sc.n,
        nodes: g.node_count() as u64,
        algorithm: sc.algorithm.label(),
        daemon_class: report.daemon_class,
        init_count: report.init_count,
        states: 0,
        transitions: 0,
        exact_moves: 0,
        exact_steps: 0,
        exact_rounds: 0,
        bound_moves,
        bound_rounds,
        verified: false,
        within_bounds: false,
        replay_ok: false,
        error: None,
    };
    match report.result {
        Err(err) => rec.error = Some(err.to_string()),
        Ok((summary, replay_ok)) => {
            rec.states = summary.states;
            rec.transitions = summary.transitions;
            rec.verified = summary.verified;
            rec.replay_ok = replay_ok;
            if let Some(w) = summary.worst {
                rec.exact_moves = w.moves;
                rec.exact_steps = w.steps;
                rec.exact_rounds = w.rounds;
                rec.within_bounds = bound_moves.is_none_or(|b| w.moves <= b)
                    && bound_rounds.is_none_or(|b| w.rounds <= b);
            }
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExploreOptions;
    use ssr_campaign::{AlgorithmSpec, InitPlan, TopologySpec};
    use ssr_runtime::Daemon;

    fn scenario(topology: TopologySpec, n: usize, algorithm: AlgorithmSpec) -> Scenario {
        Scenario {
            index: 0,
            topology,
            n,
            algorithm,
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 0xE13,
            step_cap: 1_000_000,
            intra_threads: 1,
        }
    }

    #[test]
    fn sdr_agreement_scenario_verifies_exactly() {
        let sc = scenario(TopologySpec::Path, 4, families::sdr_agreement(2));
        let rec = explore_scenario(&sc, &ScenarioExploreOptions::default()).expect("supported");
        assert!(rec.ok(), "{rec:?}");
        assert!(rec.exact_rounds <= rec.bound_rounds.unwrap());
        assert!(rec.exact_moves <= rec.bound_moves.unwrap());
        assert!(rec.states > 0);
    }

    #[test]
    fn stochastic_maxima_dominated_by_exact_worst_case() {
        let sc = scenario(TopologySpec::Star, 4, families::sdr_agreement(2));
        let opts = ScenarioExploreOptions::default();
        let rec = explore_scenario(&sc, &opts).unwrap();
        let stoch = stochastic_max(&sc, &opts).unwrap();
        assert!(rec.ok(), "{rec:?}");
        assert!(stoch.all_reached);
        assert!(stoch.moves <= rec.exact_moves, "{stoch:?} vs {rec:?}");
        assert!(stoch.rounds <= rec.exact_rounds, "{stoch:?} vs {rec:?}");
    }

    #[test]
    fn unsupported_families_are_skipped() {
        let sc = scenario(TopologySpec::Ring, 4, families::cfg_unison());
        assert!(explore_scenario(&sc, &ScenarioExploreOptions::default()).is_none());
        assert!(stochastic_max(&sc, &ScenarioExploreOptions::default()).is_none());
        let sc = scenario(TopologySpec::Ring, 4, AlgorithmSpec::plain("unregistered"));
        assert!(explore_scenario(&sc, &ScenarioExploreOptions::default()).is_none());
    }

    #[test]
    fn state_space_limit_reports_an_error_row() {
        let sc = scenario(TopologySpec::Ring, 5, families::unison_sdr());
        let opts = ScenarioExploreOptions {
            explore: ExploreOptions {
                max_states: 10,
                ..ExploreOptions::default()
            },
            ..ScenarioExploreOptions::default()
        };
        let rec = explore_scenario(&sc, &opts).unwrap();
        assert!(rec.error.is_some());
        assert!(!rec.ok());
    }
}
