//! Exhaustive mode for `ssr-campaign` scenarios: expand a declarative
//! [`Scenario`] into an exhaustive exploration instead of one
//! stochastic run.
//!
//! [`explore_scenario`] is a drop-in runner for
//! `ssr_campaign::engine::run_with`, mirroring how the stochastic
//! experiments drive the engine — the same topology/size/algorithm
//! axes, the same index-derived seeds, hence the same determinism
//! contract. For each scenario it derives a fixed *seed set* of
//! initial configurations (the designated `γ_init`, adversarial
//! samples, and the structured worst-case workloads), exhausts every
//! daemon choice from all of them, and reports the exact worst case
//! next to the paper's closed-form bound.
//!
//! [`stochastic_max`] runs the ordinary stochastic simulator over the
//! *same* initial configurations (all daemon strategies × trials) —
//! the observable maxima it returns are guaranteed to be dominated by
//! the exact worst case, which is exactly the cross-validation E13 and
//! the property tests assert.

use ssr_campaign::workloads::{sdr_broadcast_chain, unison_tear};
use ssr_campaign::{AlgorithmSpec, Scenario};
use ssr_core::{toys::Agreement, Sdr};
use ssr_graph::Graph;
use ssr_runtime::rng::splitmix64;
use ssr_runtime::{Algorithm, ConfigView, Daemon, Execution};
use ssr_unison::{spec, unison_sdr, Unison};

use crate::encode::ExploreState;
use crate::engine::{explore, Exploration, ExploreError, ExploreOptions};

/// Options for scenario-level exhaustive runs.
#[derive(Clone, Debug)]
pub struct ScenarioExploreOptions {
    /// The underlying explorer configuration.
    pub explore: ExploreOptions,
    /// Number of adversarial (`arbitrary_config`) samples in the
    /// initial seed set, on top of `γ_init` and the structured
    /// worst-case workloads.
    pub init_samples: usize,
    /// Trials per daemon strategy for [`stochastic_max`].
    pub stochastic_trials: u64,
}

impl Default for ScenarioExploreOptions {
    fn default() -> Self {
        ScenarioExploreOptions {
            explore: ExploreOptions::default(),
            init_samples: 4,
            stochastic_trials: 2,
        }
    }
}

/// Flat result of one exhaustive scenario (the explorer's analogue of
/// `ScenarioRecord`).
#[derive(Clone, Debug, PartialEq)]
pub struct ExhaustiveRecord {
    /// Grid index of the scenario.
    pub index: usize,
    /// Topology label.
    pub topology: String,
    /// Nominal size.
    pub n: usize,
    /// Actual node count.
    pub nodes: u64,
    /// Algorithm label.
    pub algorithm: String,
    /// Daemon class explored.
    pub daemon_class: &'static str,
    /// Size of the initial seed set.
    pub init_count: usize,
    /// Distinct configurations reached.
    pub states: u64,
    /// Transitions enumerated.
    pub transitions: u64,
    /// Exact worst-case moves to legitimacy over every schedule.
    pub exact_moves: u64,
    /// Exact worst-case steps.
    pub exact_steps: u64,
    /// Exact worst-case rounds.
    pub exact_rounds: u64,
    /// The paper's closed-form move bound, where one exists.
    pub bound_moves: Option<u64>,
    /// The paper's closed-form round bound.
    pub bound_rounds: Option<u64>,
    /// Convergence + closure exhaustively verified.
    pub verified: bool,
    /// Exact worst cases within every applicable closed-form bound.
    pub within_bounds: bool,
    /// Both witness schedules replayed through `Execution`
    /// byte-identically (moves, steps, rounds, predicate hit).
    pub replay_ok: bool,
    /// The exploration failed (limits); the other fields are zeroed.
    pub error: Option<String>,
}

impl ExhaustiveRecord {
    /// Overall verdict of the row.
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.verified && self.within_bounds && self.replay_ok
    }
}

/// Observed maxima of stochastic runs over the same initial seed set
/// (see [`stochastic_max`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StochasticMax {
    /// Maximum moves to legitimacy over all runs.
    pub moves: u64,
    /// Maximum rounds over all runs.
    pub rounds: u64,
    /// Whether every run reached legitimacy within the step cap.
    pub all_reached: bool,
    /// Number of runs performed.
    pub runs: usize,
}

/// Seeds for the adversarial samples, derived from the scenario seed
/// (shared by [`explore_scenario`] and [`stochastic_max`] so both
/// operate on the identical initial seed set).
fn sample_seeds(sc: &Scenario, samples: usize) -> Vec<u64> {
    let mut state = sc.seed ^ 0xE13_5EED;
    (0..samples).map(|_| splitmix64(&mut state)).collect()
}

/// A consumer of one family's fully-built exploration problem.
///
/// The domination cross-check (stochastic maxima ≤ exact worst case)
/// is only sound if [`explore_scenario`] and [`stochastic_max`]
/// operate on *identical* initial seed sets and legitimacy predicates,
/// so that construction lives once in [`dispatch_family`] and both
/// entry points are visitors over it.
trait FamilyVisitor {
    type Out;
    fn visit<A, P>(
        self,
        graph: &Graph,
        algo: &A,
        inits: Vec<Vec<A::State>>,
        legit: P,
        bounds: (Option<u64>, Option<u64>),
    ) -> Self::Out
    where
        A: Algorithm + Sync + Clone,
        A::State: ExploreState + Send + Sync,
        P: Fn(&Graph, &[A::State]) -> bool + Clone;
}

/// Builds the scenario's family once — algorithm instance, the initial
/// seed set (`γ_init`, broadcast chain, tear for the unison family,
/// adversarial samples), legitimacy predicate, and the paper's
/// closed-form `(moves, rounds)` bounds — and hands it to `visitor`.
///
/// Supported families: pure SDR (Agreement), `U ∘ SDR`, `FGA ∘ SDR`.
/// Everything else returns `None` (mirroring the `Verdict::Skip`
/// convention of the stochastic runner).
fn dispatch_family<V: FamilyVisitor>(
    sc: &Scenario,
    g: &Graph,
    samples: usize,
    visitor: V,
) -> Option<V::Out> {
    let nn = g.node_count() as u64;
    let seeds = sample_seeds(sc, samples);
    match sc.algorithm {
        AlgorithmSpec::SdrAgreement { domain } => {
            let algo = Sdr::new(Agreement::new(domain));
            let check = Sdr::new(Agreement::new(domain));
            let mut inits = vec![algo.initial_config(g), sdr_broadcast_chain(&algo, g)];
            inits.extend(seeds.iter().map(|&s| algo.arbitrary_config(g, s)));
            // Cor. 5 (rounds); Cor. 4 summed over processes (Agreement
            // has no rules of its own, so every move is an SDR move).
            let bounds = (Some(nn * (3 * nn + 3)), Some(3 * nn));
            Some(visitor.visit(
                g,
                &algo,
                inits,
                move |gr: &Graph, st: &[_]| check.is_normal_config(gr, st),
                bounds,
            ))
        }
        AlgorithmSpec::UnisonSdr => {
            let algo = unison_sdr(Unison::for_graph(g));
            let check = unison_sdr(Unison::for_graph(g));
            let period = algo.input().period();
            let mut inits = vec![
                algo.initial_config(g),
                sdr_broadcast_chain(&algo, g),
                unison_tear(g, period, (nn / 2).max(1)),
            ];
            inits.extend(seeds.iter().map(|&s| algo.arbitrary_config(g, s)));
            let d = ssr_graph::metrics::diameter(g).max(1) as u64;
            // Thm 6 (moves) and Thm 7 (rounds).
            let bounds = (
                Some(spec::theorem6_move_bound(nn, d)),
                Some(spec::theorem7_round_bound(nn)),
            );
            Some(visitor.visit(
                g,
                &algo,
                inits,
                move |gr: &Graph, st: &[_]| check.is_normal_config(gr, st),
                bounds,
            ))
        }
        AlgorithmSpec::FgaSdr { preset } => {
            let fga = preset.build(g)?;
            let algo = ssr_alliance::fga_sdr(fga);
            let check = algo.clone();
            let mut inits = vec![algo.initial_config(g), sdr_broadcast_chain(&algo, g)];
            inits.extend(seeds.iter().map(|&s| algo.arbitrary_config(g, s)));
            let m = g.edge_count() as u64;
            let delta = g.max_degree() as u64;
            // FGA ∘ SDR is silent: legitimate = terminal (Thm 11), so
            // the target predicate is terminality, measured against
            // Thm 12 (moves) and Thm 14 (rounds).
            let bounds = (
                Some(ssr_alliance::verify::theorem12_move_bound(nn, m, delta)),
                Some(ssr_alliance::verify::theorem14_round_bound(nn)),
            );
            Some(visitor.visit(
                g,
                &algo,
                inits,
                move |gr: &Graph, st: &[_]| {
                    let view = ConfigView::new(gr, st);
                    gr.nodes().all(|u| check.enabled_mask(u, &view).is_empty())
                },
                bounds,
            ))
        }
        _ => None,
    }
}

/// Exhaustively explores a scenario's family: pure SDR (Agreement),
/// `U ∘ SDR`, or `FGA ∘ SDR`; `None` for unsupported families
/// (mirroring the `Verdict::Skip` convention of the stochastic
/// runner). The seed-set construction is shared with
/// [`stochastic_max`] — both always operate on identical initial
/// configurations.
pub fn explore_scenario(sc: &Scenario, opts: &ScenarioExploreOptions) -> Option<ExhaustiveRecord> {
    let [graph_seed, _, _, _] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    struct Explore<'a>(&'a ScenarioExploreOptions);
    impl FamilyVisitor for Explore<'_> {
        type Out = FamilyOutcome;
        fn visit<A, P>(
            self,
            graph: &Graph,
            algo: &A,
            inits: Vec<Vec<A::State>>,
            legit: P,
            bounds: (Option<u64>, Option<u64>),
        ) -> FamilyOutcome
        where
            A: Algorithm + Sync + Clone,
            A::State: ExploreState + Send + Sync,
            P: Fn(&Graph, &[A::State]) -> bool + Clone,
        {
            run_family(graph, algo, inits, legit, bounds, self.0)
        }
    }
    let rec = dispatch_family(sc, &g, opts.init_samples, Explore(opts))?;
    Some(finish_record(sc, &g, rec))
}

/// Runs the stochastic simulator over the scenario's exhaustive seed
/// set: every [`Daemon::all_strategies`] entry ×
/// [`ScenarioExploreOptions::stochastic_trials`] trials per initial
/// configuration, reporting the observed maxima.
pub fn stochastic_max(sc: &Scenario, opts: &ScenarioExploreOptions) -> Option<StochasticMax> {
    let [graph_seed, _, _, _] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    struct Stochastic<'a> {
        sc: &'a Scenario,
        opts: &'a ScenarioExploreOptions,
    }
    impl FamilyVisitor for Stochastic<'_> {
        type Out = StochasticMax;
        fn visit<A, P>(
            self,
            graph: &Graph,
            algo: &A,
            inits: Vec<Vec<A::State>>,
            legit: P,
            _bounds: (Option<u64>, Option<u64>),
        ) -> StochasticMax
        where
            A: Algorithm + Sync + Clone,
            A::State: ExploreState + Send + Sync,
            P: Fn(&Graph, &[A::State]) -> bool + Clone,
        {
            run_stochastic(graph, algo, &inits, legit, self.sc, self.opts)
        }
    }
    dispatch_family(sc, &g, opts.init_samples, Stochastic { sc, opts })
}

/// Explores one family and validates the witnesses by replay.
fn run_family<A, P>(
    graph: &Graph,
    algo: &A,
    inits: Vec<Vec<A::State>>,
    legit: P,
    bounds: (Option<u64>, Option<u64>),
    opts: &ScenarioExploreOptions,
) -> FamilyOutcome
where
    A: Algorithm + Sync + Clone,
    A::State: ExploreState + Send + Sync,
    P: Fn(&Graph, &[A::State]) -> bool + Clone,
{
    let init_count = inits.len();
    let daemon_class = opts.explore.daemon.label();
    match explore(graph, algo, &inits, legit.clone(), &opts.explore) {
        Err(err) => FamilyOutcome {
            init_count,
            daemon_class,
            bounds,
            result: Err(err),
        },
        Ok(ex) => {
            let mut replay_ok = true;
            for w in [&ex.witness_moves, &ex.witness_rounds]
                .into_iter()
                .flatten()
            {
                let p = legit.clone();
                let out = w.replay(graph, algo.clone(), inits[w.init].clone(), move |gr, st| {
                    p(gr, st)
                });
                replay_ok &= w.matches(&out);
            }
            FamilyOutcome {
                init_count,
                daemon_class,
                bounds,
                result: Ok((summarize(&ex), replay_ok)),
            }
        }
    }
}

/// The type-erased part of an exploration a record needs.
struct ExploreSummary {
    states: u64,
    transitions: u64,
    verified: bool,
    worst: Option<crate::engine::WorstCase>,
}

fn summarize<S>(ex: &Exploration<S>) -> ExploreSummary {
    ExploreSummary {
        states: ex.states as u64,
        transitions: ex.transitions as u64,
        verified: ex.verified(),
        worst: ex.worst,
    }
}

struct FamilyOutcome {
    init_count: usize,
    daemon_class: &'static str,
    bounds: (Option<u64>, Option<u64>),
    result: Result<(ExploreSummary, bool), ExploreError>,
}

fn finish_record(sc: &Scenario, g: &Graph, out: FamilyOutcome) -> ExhaustiveRecord {
    let (bound_moves, bound_rounds) = out.bounds;
    let mut rec = ExhaustiveRecord {
        index: sc.index,
        topology: sc.topology.label(),
        n: sc.n,
        nodes: g.node_count() as u64,
        algorithm: sc.algorithm.label(),
        daemon_class: out.daemon_class,
        init_count: out.init_count,
        states: 0,
        transitions: 0,
        exact_moves: 0,
        exact_steps: 0,
        exact_rounds: 0,
        bound_moves,
        bound_rounds,
        verified: false,
        within_bounds: false,
        replay_ok: false,
        error: None,
    };
    match out.result {
        Err(err) => rec.error = Some(err.to_string()),
        Ok((summary, replay_ok)) => {
            rec.states = summary.states;
            rec.transitions = summary.transitions;
            rec.verified = summary.verified;
            rec.replay_ok = replay_ok;
            if let Some(w) = summary.worst {
                rec.exact_moves = w.moves;
                rec.exact_steps = w.steps;
                rec.exact_rounds = w.rounds;
                rec.within_bounds = bound_moves.is_none_or(|b| w.moves <= b)
                    && bound_rounds.is_none_or(|b| w.rounds <= b);
            }
        }
    }
    rec
}

fn run_stochastic<A, P>(
    graph: &Graph,
    algo: &A,
    inits: &[Vec<A::State>],
    legit: P,
    sc: &Scenario,
    opts: &ScenarioExploreOptions,
) -> StochasticMax
where
    A: Algorithm + Clone,
    P: Fn(&Graph, &[A::State]) -> bool + Clone,
{
    let mut max = StochasticMax {
        all_reached: true,
        ..StochasticMax::default()
    };
    let mut seed_state = sc.seed ^ 0x570C_4A57;
    for init in inits {
        for daemon in Daemon::all_strategies() {
            for _ in 0..opts.stochastic_trials {
                let p = legit.clone();
                let out = Execution::of(graph, algo.clone())
                    .init(init.clone())
                    .daemon(daemon.clone())
                    .seed(splitmix64(&mut seed_state))
                    .cap(sc.step_cap)
                    .until(move |gr, st| p(gr, st))
                    .run();
                max.runs += 1;
                max.all_reached &= out.reached;
                if out.reached {
                    max.moves = max.moves.max(out.moves_at_hit);
                    max.rounds = max.rounds.max(out.rounds_at_hit);
                }
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_campaign::{InitPlan, TopologySpec};

    fn scenario(topology: TopologySpec, n: usize, algorithm: AlgorithmSpec) -> Scenario {
        Scenario {
            index: 0,
            topology,
            n,
            algorithm,
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 0xE13,
            step_cap: 1_000_000,
        }
    }

    #[test]
    fn sdr_agreement_scenario_verifies_exactly() {
        let sc = scenario(
            TopologySpec::Path,
            4,
            AlgorithmSpec::SdrAgreement { domain: 2 },
        );
        let rec = explore_scenario(&sc, &ScenarioExploreOptions::default()).expect("supported");
        assert!(rec.ok(), "{rec:?}");
        assert!(rec.exact_rounds <= rec.bound_rounds.unwrap());
        assert!(rec.exact_moves <= rec.bound_moves.unwrap());
        assert!(rec.states > 0);
    }

    #[test]
    fn stochastic_maxima_dominated_by_exact_worst_case() {
        let sc = scenario(
            TopologySpec::Star,
            4,
            AlgorithmSpec::SdrAgreement { domain: 2 },
        );
        let opts = ScenarioExploreOptions::default();
        let rec = explore_scenario(&sc, &opts).unwrap();
        let stoch = stochastic_max(&sc, &opts).unwrap();
        assert!(rec.ok(), "{rec:?}");
        assert!(stoch.all_reached);
        assert!(stoch.moves <= rec.exact_moves, "{stoch:?} vs {rec:?}");
        assert!(stoch.rounds <= rec.exact_rounds, "{stoch:?} vs {rec:?}");
    }

    #[test]
    fn unsupported_families_are_skipped() {
        let sc = scenario(TopologySpec::Ring, 4, AlgorithmSpec::CfgUnison);
        assert!(explore_scenario(&sc, &ScenarioExploreOptions::default()).is_none());
        assert!(stochastic_max(&sc, &ScenarioExploreOptions::default()).is_none());
    }

    #[test]
    fn state_space_limit_reports_an_error_row() {
        let sc = scenario(TopologySpec::Ring, 5, AlgorithmSpec::UnisonSdr);
        let opts = ScenarioExploreOptions {
            explore: ExploreOptions {
                max_states: 10,
                ..ExploreOptions::default()
            },
            ..ScenarioExploreOptions::default()
        };
        let rec = explore_scenario(&sc, &opts).unwrap();
        assert!(rec.error.is_some());
        assert!(!rec.ok());
    }
}
