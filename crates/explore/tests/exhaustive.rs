//! The explorer's ground-truth contract, property-tested:
//!
//! 1. stochastic campaign maxima on tiny graphs never exceed the
//!    exact worst case computed by exhaustive exploration (every
//!    stochastic schedule is one of the enumerated subset sequences);
//! 2. every extracted witness schedule replays byte-identically
//!    through `Execution` (moves, steps, rounds, `TerminationReason`)
//!    — the simulator's §2.4 round accounting and the explorer's
//!    front-product DP are independent implementations that must
//!    agree;
//! 3. parallel exploration is byte-identical to sequential.

use proptest::prelude::*;
use ssr_campaign::{families, AlgorithmSpec, InitPlan, PresetSpec, Scenario, TopologySpec};
use ssr_explore::campaign::{explore_scenario, stochastic_max, ScenarioExploreOptions};
use ssr_explore::{explore, ExploreOptions};
use ssr_runtime::{Daemon, Execution, TerminationReason};

fn tiny_topology(idx: u8) -> TopologySpec {
    match idx % 5 {
        0 => TopologySpec::Path,
        1 => TopologySpec::Ring,
        2 => TopologySpec::Star,
        3 => TopologySpec::Caterpillar,
        _ => TopologySpec::Wheel,
    }
}

fn tiny_algorithm(idx: u8) -> AlgorithmSpec {
    match idx % 3 {
        0 => families::sdr_agreement(2),
        1 => families::unison_sdr(),
        _ => families::fga_sdr(PresetSpec::Domination),
    }
}

fn scenario(topology: TopologySpec, n: usize, algorithm: AlgorithmSpec, seed: u64) -> Scenario {
    Scenario {
        index: 0,
        topology,
        n,
        algorithm,
        daemon: Daemon::Central,
        init: InitPlan::Arbitrary,
        trial: 0,
        seed,
        step_cap: 2_000_000,
        intra_threads: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Properties 1 + 2 over random tiny scenarios: the exhaustive
    /// record verifies (closure, convergence, bounds, witness
    /// replays), and the stochastic maxima over the same initial
    /// configurations are dominated by the exact worst case.
    #[test]
    fn stochastic_maxima_never_exceed_exact_worst_case(
        topo_idx in 0u8..5,
        algo_idx in 0u8..3,
        n in 4usize..6,
        seed in 0u64..10_000,
    ) {
        let sc = scenario(tiny_topology(topo_idx), n, tiny_algorithm(algo_idx), seed);
        let opts = ScenarioExploreOptions::default();
        let exact = explore_scenario(&sc, &opts).expect("family supported");
        prop_assert!(exact.error.is_none(), "{exact:?}");
        prop_assert!(exact.verified, "closure/convergence must verify: {exact:?}");
        prop_assert!(exact.within_bounds, "exact worst case above paper bound: {exact:?}");
        prop_assert!(exact.replay_ok, "witness replay mismatch: {exact:?}");
        let stoch = stochastic_max(&sc, &opts).expect("family supported");
        prop_assert!(stoch.all_reached);
        prop_assert!(
            stoch.moves <= exact.exact_moves,
            "stochastic moves {} exceed exact worst case {}",
            stoch.moves,
            exact.exact_moves
        );
        prop_assert!(
            stoch.rounds <= exact.exact_rounds,
            "stochastic rounds {} exceed exact worst case {}",
            stoch.rounds,
            exact.exact_rounds
        );
    }

    /// Property 2, pinned directly on the library API: both witnesses
    /// replay to their exact move/step/round counts with
    /// `TerminationReason::PredicateMet`.
    #[test]
    fn witnesses_replay_byte_identically(
        topo_idx in 0u8..5,
        n in 4usize..6,
        seed0 in 0u64..100_000,
    ) {
        use ssr_core::{toys::Agreement, Sdr};
        let g = tiny_topology(topo_idx).build(n, 1);
        let sdr = Sdr::new(Agreement::new(2));
        let check = Sdr::new(Agreement::new(2));
        let inits: Vec<_> = (0..3).map(|k| sdr.arbitrary_config(&g, seed0 + k)).collect();
        let ex = explore(
            &g,
            &sdr,
            &inits,
            |gr, st| check.is_normal_config(gr, st),
            &ExploreOptions::default(),
        )
        .unwrap();
        prop_assert!(ex.verified());
        let worst = ex.worst.unwrap();
        for (w, target) in [
            (&ex.witness_moves, worst.moves),
            (&ex.witness_rounds, worst.rounds),
        ] {
            let Some(w) = w else {
                // Every sampled init was already legitimate.
                prop_assert_eq!(worst.moves, 0);
                continue;
            };
            let verify = Sdr::new(Agreement::new(2));
            let out = w.replay(&g, Sdr::new(Agreement::new(2)), inits[w.init].clone(), move |gr, st| {
                verify.is_normal_config(gr, st)
            });
            prop_assert!(w.matches(&out), "witness {:?} vs outcome {:?}", w, out);
            prop_assert_eq!(out.reason, TerminationReason::PredicateMet);
            // The witness achieves exactly the reported worst case.
            let achieved = if std::ptr::eq(w, ex.witness_moves.as_ref().unwrap()) {
                out.moves_at_hit
            } else {
                out.rounds_at_hit
            };
            prop_assert_eq!(achieved, target);
        }
    }

    /// Property 3: thread counts never change any part of the result —
    /// state counts, verdicts, worst cases, or witness schedules.
    #[test]
    fn parallel_exploration_is_byte_identical(
        topo_idx in 0u8..5,
        algo_idx in 0u8..2,
        seed in 0u64..10_000,
        threads in 2usize..6,
    ) {
        use ssr_core::{toys::Agreement, Sdr};
        use ssr_unison::{unison_sdr, Unison};
        let g = tiny_topology(topo_idx).build(5, seed);
        match algo_idx {
            0 => {
                let algo = Sdr::new(Agreement::new(2));
                let check = Sdr::new(Agreement::new(2));
                let inits: Vec<_> = (0..4).map(|s| algo.arbitrary_config(&g, seed + s)).collect();
                let legit = |gr: &ssr_graph::Graph, st: &[_]| check.is_normal_config(gr, st);
                let seq = explore(&g, &algo, &inits, legit, &ExploreOptions::default()).unwrap();
                let par = explore(
                    &g,
                    &algo,
                    &inits,
                    legit,
                    &ExploreOptions { threads, ..ExploreOptions::default() },
                )
                .unwrap();
                prop_assert_eq!(seq, par);
            }
            _ => {
                let algo = unison_sdr(Unison::for_graph(&g));
                let check = unison_sdr(Unison::for_graph(&g));
                let inits: Vec<_> = (0..4).map(|s| algo.arbitrary_config(&g, seed + s)).collect();
                let legit = |gr: &ssr_graph::Graph, st: &[_]| check.is_normal_config(gr, st);
                let seq = explore(&g, &algo, &inits, legit, &ExploreOptions::default()).unwrap();
                let par = explore(
                    &g,
                    &algo,
                    &inits,
                    legit,
                    &ExploreOptions { threads, ..ExploreOptions::default() },
                )
                .unwrap();
                prop_assert_eq!(seq, par);
            }
        }
    }
}

/// Deterministic anchor for the domination property: a stochastic run
/// driven by every daemon strategy on the exact witness init must stay
/// at or below the witness's own numbers.
#[test]
fn witness_is_a_reachable_stochastic_upper_bound() {
    use ssr_core::{toys::Agreement, Sdr};
    let g = ssr_graph::generators::caterpillar(2, 1);
    let sdr = Sdr::new(Agreement::new(2));
    let check = Sdr::new(Agreement::new(2));
    let inits: Vec<_> = (0..8).map(|s| sdr.arbitrary_config(&g, s)).collect();
    let ex = explore(
        &g,
        &sdr,
        &inits,
        |gr, st| check.is_normal_config(gr, st),
        &ExploreOptions::default(),
    )
    .unwrap();
    let worst = ex.worst.unwrap();
    let w = ex.witness_moves.expect("some init is illegitimate");
    for daemon in Daemon::all_strategies() {
        for seed in 0..5u64 {
            let verify = Sdr::new(Agreement::new(2));
            let out = Execution::of(&g, Sdr::new(Agreement::new(2)))
                .init(inits[w.init].clone())
                .daemon(daemon.clone())
                .seed(seed)
                .cap(1_000_000)
                .until(move |gr, st| verify.is_normal_config(gr, st))
                .run();
            assert!(out.reached);
            assert!(
                out.moves_at_hit <= worst.moves,
                "{daemon:?} observed {} moves, exact worst is {}",
                out.moves_at_hit,
                worst.moves
            );
            assert!(out.rounds_at_hit <= worst.rounds);
        }
    }
}
